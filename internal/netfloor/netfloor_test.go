package netfloor

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ate"
	"repro/internal/core"
	"repro/internal/floor"
	"repro/internal/lna"
	"repro/internal/lotrun"
	"repro/internal/parallel"
	"repro/internal/wave"
)

// fixture is the shared engineering phase (stimulus, calibration, gate),
// built once for the whole package — the same recipe as lotrun's tests,
// so bit-identity claims span both orchestrators.
type fixture struct {
	cfg   *core.TestConfig
	cal   *core.Calibration
	stim  *wave.PWL
	gate  *floor.Gate
	model core.DeviceModel
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		rng := rand.New(rand.NewSource(11))
		model := core.RF2401Model{}
		cfg := core.DefaultSimConfig()
		stim := cfg.RandomStimulus(rng)
		train, err := core.GeneratePopulation(rng, model, 60, 0.9)
		if err != nil {
			fixErr = err
			return
		}
		td, err := core.AcquireTrainingSet(rng, cfg, stim, train,
			func(d *core.Device) lna.Specs { return d.Specs })
		if err != nil {
			fixErr = err
			return
		}
		cal, err := core.Calibrate(rng, stim, td, core.CalibrationOptions{})
		if err != nil {
			fixErr = err
			return
		}
		sigs := make([][]float64, len(td))
		for i := range td {
			sigs[i] = td[i].Signature
		}
		gate, err := floor.FitGate(sigs, floor.GateOptions{})
		if err != nil {
			fixErr = err
			return
		}
		fix = &fixture{cfg: cfg, cal: cal, stim: stim, gate: gate, model: model}
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fix
}

func rf2401Pass(s lna.Specs) bool {
	return s.GainDB >= 10.0 && s.NFDB <= 4.2 && s.IIP3DBm >= -9.5
}

func (f *fixture) engine() *floor.Engine {
	return &floor.Engine{
		Cfg:      f.cfg,
		Cal:      f.cal,
		Stim:     f.stim,
		Gate:     f.gate,
		PredPass: rf2401Pass,
		TruePass: rf2401Pass,
		Policy:   floor.DefaultPolicy(),
	}
}

func testLot(t *testing.T, f *fixture, n int) []*core.Device {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	lot, err := core.GeneratePopulation(rng, f.model, n, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return lot
}

func quietBreaker() lotrun.BreakerConfig { return lotrun.BreakerConfig{TripConsecutive: 1 << 20} }

// stripSites zeroes the per-result Site field — the only LotReport content
// that legitimately depends on which site screened which device — and the
// floor-dependent economics charges (network time scales with the retry
// count, quarantine with device placement, journal time with journaling),
// plus the Time comparison derived from them. Everything else — bins,
// mis-bins, fault counts, verdicts, retest histogram, per-device results —
// must be bit-identical across floors.
func stripSites(rep *floor.LotReport) {
	for i := range rep.Results {
		rep.Results[i].Site = 0
	}
	rep.Load.NetworkS = 0
	rep.Load.QuarantineS = 0
	rep.Load.JournalS = 0
	rep.Time = ate.TimeComparison{}
}

func reportsEqual(t *testing.T, label string, a, b *floor.LotReport) {
	t.Helper()
	ca, cb := *a, *b
	ca.Results = append([]floor.DeviceResult(nil), a.Results...)
	cb.Results = append([]floor.DeviceResult(nil), b.Results...)
	stripSites(&ca)
	stripSites(&cb)
	if !reflect.DeepEqual(ca, cb) {
		t.Fatalf("%s: lot reports diverge:\n%v\nvs\n%v", label, ca, cb)
	}
}

// farm is an in-process test floor: persistent Sites reachable through a
// net.Pipe dialer, with independent fault streams on each end of every
// connection. Sites persist across reconnects, exactly like separate
// sitetester processes would.
type farm struct {
	t      *testing.T
	ctx    context.Context
	cancel context.CancelFunc
	sites  map[string]*Site
	addrs  []string

	mu    sync.Mutex
	conns int
	wg    sync.WaitGroup
}

func newFarm(t *testing.T, f *fixture, lot []*core.Device, faults *floor.FaultModel, lotSeed int64, n int) *farm {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	fm := &farm{t: t, ctx: ctx, cancel: cancel, sites: make(map[string]*Site)}
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("site%d", i)
		fm.addrs = append(fm.addrs, addr)
		fm.sites[addr] = &Site{
			Name: addr, Engine: f.engine(), Lot: lot, Faults: faults, LotSeed: lotSeed,
			HeartbeatInterval: 10 * time.Millisecond,
		}
	}
	t.Cleanup(func() {
		cancel()
		fm.wg.Wait()
	})
	return fm
}

// dialer returns a Dialer producing net.Pipe connections to the farm's
// sites; a non-zero profile faults BOTH directions, each with its own
// deterministic stream.
func (fm *farm) dialer(prof FaultProfile, seed int64) Dialer {
	return func(ctx context.Context, addr string) (net.Conn, error) {
		site, ok := fm.sites[addr]
		if !ok {
			return nil, fmt.Errorf("farm: no site at %q", addr)
		}
		if fm.ctx.Err() != nil {
			return nil, fmt.Errorf("farm: shut down")
		}
		fm.mu.Lock()
		k := fm.conns
		fm.conns++
		fm.mu.Unlock()
		cli, srv := net.Pipe()
		var srvConn net.Conn = srv
		var cliConn net.Conn = cli
		if !prof.Zero() {
			srvConn = NewFaultConn(srv, parallel.SubSeed(seed, 2*k+1), prof)
			cliConn = NewFaultConn(cli, parallel.SubSeed(seed, 2*k), prof)
		}
		fm.wg.Add(1)
		go func() {
			defer fm.wg.Done()
			site.ServeConn(fm.ctx, srvConn)
		}()
		return cliConn, nil
	}
}

// coordOpts is the fast-timing Options base used across the tests.
func coordOpts(fm *farm, d Dialer) Options {
	return Options{
		Remotes:           fm.addrs,
		Dialer:            d,
		RequestTimeout:    2 * time.Second,
		HeartbeatInterval: 10 * time.Millisecond,
		IdleTimeout:       80 * time.Millisecond,
		RetryBase:         5 * time.Millisecond,
		RetryMax:          50 * time.Millisecond,
		Breaker:           quietBreaker(),
	}
}

// TestDistributedBitIdentity is the acceptance test: for a fixed lot
// seed, the bins from (a) the serial engine, (b) the in-process
// orchestrator, (c) the distributed coordinator at 1, 4 and 8 sites
// under injected drop/duplicate/partition faults, and (d) a coordinator
// killed mid-lot and resumed, are all identical.
func TestDistributedBitIdentity(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 48)
	faults := floor.DefaultFaultModel(0.15)
	const seed = 99

	serial, err := f.engine().RunLot(seed, lot, faults)
	if err != nil {
		t.Fatal(err)
	}
	local, err := (&lotrun.Orchestrator{Engine: f.engine(),
		Opt: lotrun.Options{Sites: 4, Breaker: quietBreaker()}}).
		Run(context.Background(), seed, lot, faults)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "serial vs 4-site local", serial, local.Lot)

	prof := FaultProfile{DropP: 0.03, DupP: 0.05, PartitionAfter: 150}
	for _, sites := range []int{1, 4, 8} {
		sites := sites
		t.Run(fmt.Sprintf("sites=%d", sites), func(t *testing.T) {
			fm := newFarm(t, f, lot, faults, seed, sites)
			c := &Coordinator{Engine: f.engine(), Opt: coordOpts(fm, fm.dialer(prof, int64(sites)))}
			rep, err := c.Run(context.Background(), seed, lot, faults)
			if err != nil {
				t.Fatal(err)
			}
			reportsEqual(t, fmt.Sprintf("serial vs %d-site distributed", sites), serial, rep.Lot)
			if rep.Lot.Load.NetworkS <= 0 {
				t.Fatal("distributed lot charged no network time")
			}
		})
	}

	// Kill-and-resume: interrupt the distributed run after 15 commits,
	// then resume it (fresh coordinator, same rig) — same bins again.
	t.Run("kill-and-resume", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "net.journal")
		fm := newFarm(t, f, lot, faults, seed, 4)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var committed atomic.Int64
		opt := coordOpts(fm, fm.dialer(prof, 77))
		opt.JournalPath = path
		opt.OnResult = func(floor.DeviceResult) {
			if committed.Add(1) == 15 {
				cancel()
			}
		}
		c := &Coordinator{Engine: f.engine(), Opt: opt}
		if _, err := c.Run(ctx, seed, lot, faults); err == nil {
			t.Fatal("killed distributed run must report interruption")
		}

		fm2 := newFarm(t, f, lot, faults, seed, 4)
		opt2 := coordOpts(fm2, fm2.dialer(prof, 78))
		opt2.JournalPath = path
		c2 := &Coordinator{Engine: f.engine(), Opt: opt2}
		rep, err := c2.Resume(context.Background(), seed, lot, faults)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Replayed == 0 || rep.Replayed >= len(lot) {
			t.Fatalf("resume replayed %d of %d devices; want partial progress", rep.Replayed, len(lot))
		}
		reportsEqual(t, "distributed kill-and-resume", serial, rep.Lot)
	})
}

// TestPartitionFailover: every connection black-holes after a few
// messages. The coordinator must detect the silence via the idle timeout,
// reconnect, reassign what was in flight, and still finish with the
// serial bins — and the report must show the network actually failed.
func TestPartitionFailover(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 24)
	const seed = 41

	serial, err := f.engine().RunLot(seed, lot, nil)
	if err != nil {
		t.Fatal(err)
	}

	fm := newFarm(t, f, lot, nil, seed, 2)
	prof := FaultProfile{PartitionAfter: 12}
	opt := coordOpts(fm, fm.dialer(prof, 5))
	opt.DisableLocalFallback = true // force recovery through the network
	c := &Coordinator{Engine: f.engine(), Opt: opt}

	start := time.Now()
	rep, err := c.Run(context.Background(), seed, lot, nil)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	reportsEqual(t, "partition failover", serial, rep.Lot)
	if rep.Net.Reconnects == 0 {
		t.Fatal("partitioned floor finished without a single reconnect")
	}
	if rep.Net.LocalDevices != 0 {
		t.Fatalf("local fallback screened %d devices with fallback disabled", rep.Net.LocalDevices)
	}
	t.Logf("partition failover: %d reconnects, %d retries, %d reassigned, %d hedges, %d dups absorbed in %v",
		rep.Net.Reconnects, rep.Net.Retries, rep.Net.Reassigned, rep.Net.Hedges, rep.Net.DupResults, elapsed)
}

// TestAllRemotesDownLocalFallback: with every dial failing, the local
// fallback screens the entire lot — same bins, and the report says who
// did the work.
func TestAllRemotesDownLocalFallback(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 16)
	const seed = 13

	serial, err := f.engine().RunLot(seed, lot, nil)
	if err != nil {
		t.Fatal(err)
	}

	down := func(ctx context.Context, addr string) (net.Conn, error) {
		return nil, fmt.Errorf("connection refused")
	}
	opt := Options{
		Remotes:           []string{"deadsite"},
		Dialer:            down,
		RequestTimeout:    time.Second,
		HeartbeatInterval: 5 * time.Millisecond,
		RetryBase:         5 * time.Millisecond,
		RetryMax:          20 * time.Millisecond,
		Breaker:           quietBreaker(),
	}
	c := &Coordinator{Engine: f.engine(), Opt: opt}
	rep, err := c.Run(context.Background(), seed, lot, nil)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "all-remotes-down fallback", serial, rep.Lot)
	if rep.Net.LocalDevices != len(lot) {
		t.Fatalf("local fallback screened %d of %d devices", rep.Net.LocalDevices, len(lot))
	}
	if rep.Net.DialFails == 0 {
		t.Fatal("dead remote produced no dial failures")
	}
	if !strings.Contains(rep.String(), "local fallback") {
		t.Fatalf("report rendering lost the fallback story: %q", rep.String())
	}

	// And with the fallback disabled and no remotes, the run must refuse
	// to start rather than hang.
	c2 := &Coordinator{Engine: f.engine(), Opt: Options{DisableLocalFallback: true}}
	if _, err := c2.Run(context.Background(), seed, lot, nil); err == nil {
		t.Fatal("no remotes + no fallback must error")
	}
}

// TestHelloRejectsMismatchedSite: a site serving a different lot (wrong
// seed → different fingerprinted lot identity) is permanently abandoned
// after the handshake; the lot still finishes via the local fallback and
// the report names the abandonment.
func TestHelloRejectsMismatchedSite(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 8)
	const seed = 3

	fm := newFarm(t, f, lot, nil, seed+1, 1) // site built for the WRONG lot seed
	opt := coordOpts(fm, fm.dialer(FaultProfile{}, 0))
	c := &Coordinator{Engine: f.engine(), Opt: opt}
	rep, err := c.Run(context.Background(), seed, lot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sites[0].Err == "" {
		t.Fatal("mismatched site was not abandoned")
	}
	if rep.Net.LocalDevices != len(lot) {
		t.Fatalf("local fallback screened %d of %d after abandonment", rep.Net.LocalDevices, len(lot))
	}

	serial, err := f.engine().RunLot(seed, lot, nil)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "abandoned-site lot", serial, rep.Lot)
}

// TestExactlyOnceUnderDuplication: a duplication-heavy transport delivers
// results (and assignments) twice; the journal must still contain each
// device exactly once, and the dedup counter must show the machinery
// actually absorbed something.
func TestExactlyOnceUnderDuplication(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 24)
	const seed = 21
	path := filepath.Join(t.TempDir(), "dup.journal")

	fm := newFarm(t, f, lot, nil, seed, 3)
	prof := FaultProfile{DupP: 0.5}
	opt := coordOpts(fm, fm.dialer(prof, 9))
	opt.JournalPath = path
	c := &Coordinator{Engine: f.engine(), Opt: opt}
	rep, err := c.Run(context.Background(), seed, lot, nil)
	if err != nil {
		t.Fatal(err)
	}

	hdr, results, _, stats, err := lotrun.ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Duplicates != 0 {
		t.Fatalf("journal holds %d duplicate records; commit is not exactly-once", stats.Duplicates)
	}
	if len(results) != len(lot) || stats.Records != len(lot) {
		t.Fatalf("journal holds %d records for %d devices", stats.Records, len(lot))
	}
	if hdr.Fingerprint != f.engine().Fingerprint() {
		t.Fatal("journal header lost the engine fingerprint")
	}

	serial, err := f.engine().RunLot(seed, lot, nil)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "duplication-heavy lot", serial, rep.Lot)
	if rep.Net.LocalDevices > len(lot)/4 {
		t.Fatalf("local fallback screened %d of %d devices while every remote was healthy", rep.Net.LocalDevices, len(lot))
	}
	if rep.Net.Assigns < len(lot)-rep.Net.LocalDevices {
		t.Fatalf("%d assigns for %d remote devices: the lot was not screened remotely",
			rep.Net.Assigns, len(lot)-rep.Net.LocalDevices)
	}
	if rep.Net.DupResults == 0 {
		t.Fatal("a 50% duplication transport exercised no dedup at all")
	}
	t.Logf("dup lot: %d duplicate results absorbed, %d assigns", rep.Net.DupResults, rep.Net.Assigns)
}

// TestNetSoak is the -race soak: the full fault cocktail — drop,
// duplicate, corrupt, delay and recurring partitions — on both directions
// of every connection, across reconnect epochs, still converges to the
// serial bins. Kept small enough for -short CI.
func TestNetSoak(t *testing.T) {
	f := getFixture(t)
	n := 24
	if testing.Short() {
		n = 12
	}
	lot := testLot(t, f, n)
	faults := floor.DefaultFaultModel(0.1)
	const seed = 77

	serial, err := f.engine().RunLot(seed, lot, faults)
	if err != nil {
		t.Fatal(err)
	}

	fm := newFarm(t, f, lot, faults, seed, 4)
	prof := FaultProfile{
		DropP:          0.05,
		DupP:           0.05,
		CorruptP:       0.02,
		DelayP:         0.1,
		DelayMax:       3 * time.Millisecond,
		PartitionAfter: 60,
	}
	opt := coordOpts(fm, fm.dialer(prof, 1234))
	opt.RequestTimeout = time.Second
	c := &Coordinator{Engine: f.engine(), Opt: opt}
	rep, err := c.Run(context.Background(), seed, lot, faults)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "soak", serial, rep.Lot)
	t.Logf("soak: %d assigns, %d retries, %d reconnects, %d dups absorbed, %d local",
		rep.Net.Assigns, rep.Net.Retries, rep.Net.Reconnects, rep.Net.DupResults, rep.Net.LocalDevices)
}

// TestCoordinatorInputValidation covers the refuse-early paths.
func TestCoordinatorInputValidation(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 4)
	ctx := context.Background()

	if _, err := (&Coordinator{}).Run(ctx, 1, lot, nil); err == nil {
		t.Fatal("nil engine must error")
	}
	if _, err := (&Coordinator{Engine: f.engine()}).Run(ctx, 1, nil, nil); err == nil {
		t.Fatal("empty lot must error")
	}
	if _, err := (&Coordinator{Engine: f.engine()}).Resume(ctx, 1, lot, nil); err == nil {
		t.Fatal("resume without a journal path must error")
	}
	bad := &floor.FaultModel{P: map[floor.FaultKind]float64{floor.FaultBurstNoise: 2}}
	if _, err := (&Coordinator{Engine: f.engine()}).Run(ctx, 1, lot, bad); err == nil {
		t.Fatal("invalid fault model must error")
	}
}

// TestResumeRejectsWrongRig: the journal pins the lot identity AND the
// engine fingerprint; a resume from a differently calibrated coordinator
// must be refused.
func TestResumeRejectsWrongRig(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 8)
	const seed = 55
	path := filepath.Join(t.TempDir(), "rig.journal")

	fm := newFarm(t, f, lot, nil, seed, 1)
	opt := coordOpts(fm, fm.dialer(FaultProfile{}, 0))
	opt.JournalPath = path
	c := &Coordinator{Engine: f.engine(), Opt: opt}
	if _, err := c.Run(context.Background(), seed, lot, nil); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Resume(context.Background(), seed+1, lot, nil); err == nil {
		t.Fatal("wrong seed must be refused")
	}
	eng := f.engine()
	eng.Policy.MaxRetests = eng.Policy.MaxRetests + 3 // different policy → different fingerprint
	c2 := &Coordinator{Engine: eng, Opt: opt}
	if _, err := c2.Resume(context.Background(), seed, lot, nil); err == nil {
		t.Fatal("differently calibrated engine must be refused")
	}
}
