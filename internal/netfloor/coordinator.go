package netfloor

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/diskfault"
	"repro/internal/floor"
	"repro/internal/lotrun"
	"repro/internal/parallel"
)

// Options configures the distributed coordinator.
type Options struct {
	// Remotes are the site addresses to dial. At least one is required
	// unless the local fallback is allowed to carry the whole lot.
	Remotes []string
	// Dialer opens connections to remotes (default TCPDialer). Tests swap
	// in net.Pipe dialers wrapped in FaultConns.
	Dialer Dialer
	// JournalPath enables the crash-safe lot journal when non-empty —
	// the same fsync'd, CRC-checked journal the in-process orchestrator
	// writes, so a distributed lot can be killed and resumed (even by a
	// local run, and vice versa).
	JournalPath string
	// RequestTimeout bounds one assignment round-trip including the
	// device's screening time (default 60s). An overdue request is retried
	// — at-least-once delivery; the commit path dedups.
	RequestTimeout time.Duration
	// HeartbeatInterval is the coordinator's idle beacon period and its
	// read-poll granularity (default 1s).
	HeartbeatInterval time.Duration
	// IdleTimeout is how long without hearing anything from a site (not
	// even a heartbeat) before the connection is declared dead (default
	// 4 × HeartbeatInterval). This is the partition detector: a
	// black-holed connection never errors, it only goes silent.
	IdleTimeout time.Duration
	// RetryBase/RetryFactor/RetryMax/RetryJitter shape the exponential
	// backoff between reconnect attempts (defaults 100ms / 2 / 5s / 0.5).
	// Jitter is seeded from NetSeed so runs are reproducible.
	RetryBase   time.Duration
	RetryFactor float64
	RetryMax    time.Duration
	RetryJitter float64
	// NetSeed seeds the retry jitter (per site, via SplitMix). It has no
	// effect on bins — only on timing.
	NetSeed int64
	// ModelRTTS is the modeled wall time of one assignment round-trip
	// charged to the lot economics (default 2ms), covering request,
	// response and framing. Modeled rather than measured, like the
	// journal fsync cost, so the economics stay comparable across runs:
	// NetworkS = ModelRTTS × assignments (including every retry).
	ModelRTTS float64
	// JournalSyncS is the modeled per-record fsync cost (default 0.5ms),
	// identical to lotrun's.
	JournalSyncS float64
	// FS is the filesystem seam the journal runs on (default diskfault.OS;
	// fault-injection tests substitute a seeded diskfault.FaultFS).
	FS diskfault.FS
	// JournalRetry bounds the retry-with-backoff applied to each journal
	// commit before the lot degrades to journal-less mode (zero value:
	// 3 attempts, 1ms initial backoff).
	JournalRetry lotrun.RetryPolicy
	// Batch is the most devices the coordinator packs into one batched
	// assignment (default 1 = one device per Assign). The effective batch
	// per site is min(Batch, the site's advertised maximum), so a mixed
	// floor of batching and serial sites works transparently; hedged
	// (straggler) assignments always go out one device at a time. Bins are
	// bit-identical at every batch size.
	Batch int
	// DisableLocalFallback prevents the coordinator from screening devices
	// itself when every remote is down. With the fallback enabled
	// (default), the lot always finishes — the local engine is the same
	// deterministic function the sites run.
	DisableLocalFallback bool
	// DeviceTimeout bounds a locally screened device's wall time.
	DeviceTimeout time.Duration
	// Breaker tunes the per-site circuit breakers (same machine as
	// lotrun's: consecutive gated-out insertions quarantine the site).
	Breaker lotrun.BreakerConfig
	// Watchdog tunes the drift watchdog running on the collector. Remote
	// auto-recalibration is not supported — the coordinator cannot swap a
	// remote site's engine — so alarms only report (and fire OnDrift).
	Watchdog lotrun.WatchdogConfig
	// OnDrift, when set, is called for every drift alarm.
	OnDrift func(lotrun.DriftAlarm)
	// OnResult, when set, is called by the collector after each device's
	// result is committed (journaled when a journal is configured) — test
	// instrumentation for observing or interrupting the lot mid-flight.
	OnResult func(floor.DeviceResult)
	// Logf, when set, receives coordinator progress lines.
	Logf func(format string, args ...any)
}

func (o *Options) defaults() {
	if o.Dialer == nil {
		o.Dialer = TCPDialer
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 4 * o.HeartbeatInterval
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 100 * time.Millisecond
	}
	if o.RetryFactor < 1 {
		o.RetryFactor = 2
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 5 * time.Second
	}
	if o.RetryJitter <= 0 {
		o.RetryJitter = 0.5
	}
	if o.ModelRTTS <= 0 {
		o.ModelRTTS = 2e-3
	}
	if o.Batch < 1 {
		o.Batch = 1
	}
	if o.JournalSyncS <= 0 {
		o.JournalSyncS = 0.5e-3
	}
	if o.FS == nil {
		o.FS = diskfault.OS
	}
}

// SiteNetStats is one remote site's share of the lot plus its network
// history.
type SiteNetStats struct {
	Site       int
	Addr       string
	Devices    int // results from this site that were committed first
	Insertions int
	Assigns    int // assignments sent (including retries and hedges)
	Retries    int // assignments that timed out or died and were retried
	Reconnects int // successful re-dials after the first connection
	DialFails  int
	// DrainFails counts drain frames (the end-of-lot courtesy) that failed
	// to send — the site will still wind down on its own idle timeout, but
	// the failure is part of the connection's story, not noise.
	DrainFails  int
	Trips       int
	QuarantineS float64
	// Err is set when the site was permanently abandoned (identity
	// mismatch during the handshake).
	Err string
}

// NetStats aggregates the lot's network story.
type NetStats struct {
	Assigns      int // total assignments sent
	Retries      int // assignment attempts that failed and were retried
	Reassigned   int // devices requeued from a failed site
	Hedges       int // straggler hedges (device assigned to a second site)
	DupResults   int // results dropped by the exactly-once dedup
	Reconnects   int
	DialFails    int
	LocalDevices int // devices screened by the coordinator's local fallback
}

// Report is the distributed lot outcome: the floor LotReport plus the
// supervision and network story.
type Report struct {
	Lot    *floor.LotReport
	Sites  []SiteNetStats
	Net    NetStats
	Trips  []lotrun.TripEvent
	Alarms []lotrun.DriftAlarm
	// Replayed is how many devices came from the journal (0 on a fresh
	// run); Replay details what replay found.
	Replayed int
	Replay   lotrun.ReplayStats
	// JournalDegraded marks a lot whose journal failed persistently
	// mid-run: the lot finished journal-less (bins intact, resume
	// disabled). JournalErr carries the final journal error.
	JournalDegraded bool
	JournalErr      string
}

// String renders the distributed-floor summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "distributed floor: %d remote sites\n", len(r.Sites))
	if r.Replayed > 0 {
		fmt.Fprintf(&b, "  %d devices replayed from journal (%d corrupt lines skipped)\n",
			r.Replayed, r.Replay.Corrupt)
	}
	for _, s := range r.Sites {
		fmt.Fprintf(&b, "  site %d (%s): %d devices, %d assigns, %d retries, %d reconnects, %d trips, %.1fs quarantine",
			s.Site, s.Addr, s.Devices, s.Assigns, s.Retries, s.Reconnects, s.Trips, s.QuarantineS)
		if s.Err != "" {
			fmt.Fprintf(&b, " [abandoned: %s]", s.Err)
		}
		fmt.Fprintln(&b)
	}
	if r.Net.LocalDevices > 0 {
		fmt.Fprintf(&b, "  local fallback screened %d devices\n", r.Net.LocalDevices)
	}
	fmt.Fprintf(&b, "  net: %d assigns, %d retries, %d reassigned, %d hedges, %d duplicate results absorbed\n",
		r.Net.Assigns, r.Net.Retries, r.Net.Reassigned, r.Net.Hedges, r.Net.DupResults)
	for _, a := range r.Alarms {
		fmt.Fprintf(&b, "  drift alarm (%s) at device %d: ewma %.2f, cusum %.2f over %d samples\n",
			a.Detector, a.Device, a.EWMA, a.CUSUM, a.Samples)
	}
	if r.JournalDegraded {
		fmt.Fprintf(&b, "  WARNING: journal degraded — lot ran journal-less, resume disabled (%s)\n", r.JournalErr)
	}
	return b.String()
}

// Dispatcher owns the exactly-once assignment state of one lot. Delivery
// is at-least-once (retries, reconnects, hedges, duplicated frames), so
// the same index can be in flight on several sites at once; Complete is
// the single commit point — first result wins, everything after is a
// counted duplicate that never reaches the journal. It is shared by the
// single-lot Coordinator and the multi-lot server (internal/lotserver),
// which runs one Dispatcher per active lot.
type Dispatcher struct {
	mu      sync.Mutex
	queue   []int // pending indices, FIFO
	holders []int // in-flight holder count per index
	done    []bool
	left    int // indices not yet completed
}

// NewDispatcher builds the assignment state: pending lists the indices
// still to screen, devices is the full lot size (indices outside pending
// are treated as already complete — journal-replayed devices).
func NewDispatcher(pending []int, devices int) *Dispatcher {
	d := &Dispatcher{
		queue:   append([]int(nil), pending...),
		holders: make([]int, devices),
		done:    make([]bool, devices),
		left:    len(pending),
	}
	for i := range d.done {
		d.done[i] = true
	}
	for _, idx := range pending {
		d.done[idx] = false
	}
	return d
}

// Next hands out the front pending index. When the queue is empty and
// hedge is set, it instead picks the lowest in-flight index held by
// exactly one site — straggler hedging: a second site races the (possibly
// dead or slow) holder, and the dedup absorbs whichever result loses.
// Returns (index, hedged, ok).
func (d *Dispatcher) Next(hedge bool) (int, bool, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.queue) > 0 {
		idx := d.queue[0]
		d.queue = d.queue[1:]
		if d.done[idx] {
			continue
		}
		d.holders[idx]++
		return idx, false, true
	}
	if hedge {
		for idx := range d.holders {
			if d.holders[idx] == 1 && !d.done[idx] {
				d.holders[idx]++
				return idx, true, true
			}
		}
	}
	return 0, false, false
}

// NextBatch hands out up to k pending indices from the front of the
// queue. Unlike Next it never hedges: batches are for fresh work, and a
// straggler hedge wants the smallest possible unit so the dedup wastes at
// most one device. An empty return means the queue is dry (the caller
// falls back to Next(true) for hedging).
func (d *Dispatcher) NextBatch(k int) []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var idxs []int
	for len(idxs) < k && len(d.queue) > 0 {
		idx := d.queue[0]
		d.queue = d.queue[1:]
		if d.done[idx] {
			continue
		}
		d.holders[idx]++
		idxs = append(idxs, idx)
	}
	return idxs
}

// Release drops one hold on idx; an undone index with no holders left is
// requeued at the front (it has waited longest). Reports whether the
// index was requeued — i.e. reassigned away from a failed site.
func (d *Dispatcher) Release(idx int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.holders[idx] > 0 {
		d.holders[idx]--
	}
	if !d.done[idx] && d.holders[idx] == 0 {
		d.queue = append([]int{idx}, d.queue...)
		return true
	}
	return false
}

// Complete marks idx done; only the first caller wins.
func (d *Dispatcher) Complete(idx int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.done[idx] {
		return false
	}
	d.done[idx] = true
	d.left--
	return true
}

// Remaining reports how many indices have not yet completed.
func (d *Dispatcher) Remaining() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.left
}

// runState is the shared state of one distributed lot run.
type runState struct {
	disp   *Dispatcher
	out    chan floor.DeviceResult
	doneCh chan struct{} // closed by the collector when every device is committed
	alive  atomic.Int32  // connected remote sites; local fallback screens at 0
	// settled counts sites whose first connection attempt has resolved
	// (either way). The local fallback waits for all of them before
	// reading alive == 0 as "every remote is down" — otherwise it would
	// steal the whole lot during the initial dial/handshake window.
	settled atomic.Int32

	mu  sync.Mutex
	net NetStats
}

func (rs *runState) addNet(f func(*NetStats)) {
	rs.mu.Lock()
	f(&rs.net)
	rs.mu.Unlock()
}

// deliver routes one screened result through the exactly-once gate: the
// first result for an index goes to the collector, later ones are counted
// and dropped.
func (rs *runState) deliver(res floor.DeviceResult, siteOrdinal int) bool {
	if !rs.disp.Complete(res.Index) {
		rs.addNet(func(n *NetStats) { n.DupResults++ })
		return false
	}
	res.Site = siteOrdinal
	rs.out <- res // buffered to lot size: never blocks
	return true
}

// Coordinator screens lots across remote sites.
type Coordinator struct {
	Engine *floor.Engine
	Opt    Options
}

// Run screens the lot from scratch across the configured remotes. If a
// journal is configured it is started fresh.
func (c *Coordinator) Run(ctx context.Context, lotSeed int64, lot []*core.Device, faults *floor.FaultModel) (*Report, error) {
	return c.run(ctx, lotSeed, lot, faults, false)
}

// Resume replays the configured journal and screens only the devices it
// does not already contain — the journal format is shared with lotrun, so
// a lot started locally can resume distributed and vice versa.
func (c *Coordinator) Resume(ctx context.Context, lotSeed int64, lot []*core.Device, faults *floor.FaultModel) (*Report, error) {
	return c.run(ctx, lotSeed, lot, faults, true)
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Opt.Logf != nil {
		c.Opt.Logf(format, args...)
	}
}

var (
	errRequestTimeout = errors.New("netfloor: assignment overdue (request timeout)")
	errConnDead       = errors.New("netfloor: connection dead")
	errLotDone        = errors.New("netfloor: lot complete")
	errSiteDraining   = errors.New("netfloor: site announced drain")
)

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (c *Coordinator) run(ctx context.Context, lotSeed int64, lot []*core.Device, faults *floor.FaultModel, resume bool) (*Report, error) {
	if c.Engine == nil {
		return nil, fmt.Errorf("netfloor: coordinator needs an engine")
	}
	if err := c.Engine.Validate(); err != nil {
		return nil, err
	}
	if len(lot) == 0 {
		return nil, fmt.Errorf("netfloor: empty lot")
	}
	if faults != nil {
		if err := faults.Validate(); err != nil {
			return nil, err
		}
	}
	opt := c.Opt
	opt.defaults()
	if len(opt.Remotes) == 0 && opt.DisableLocalFallback {
		return nil, fmt.Errorf("netfloor: no remotes and local fallback disabled — nothing can screen")
	}
	if ctx == nil {
		ctx = context.Background()
	}

	faultP := 0.0
	if faults != nil {
		faultP = faults.TotalP()
	}
	hello := Hello{
		Version:     ProtocolVersion,
		LotSeed:     lotSeed,
		Devices:     len(lot),
		FaultP:      faultP,
		Fingerprint: c.Engine.Fingerprint(),
	}

	rep := &Report{}
	results := make([]*floor.DeviceResult, len(lot))

	// Journal: fresh on Run, replay + append on Resume — byte-compatible
	// with lotrun's, including the identity checks.
	var jr *lotrun.Journal
	if resume {
		if opt.JournalPath == "" {
			return nil, fmt.Errorf("netfloor: resume needs Options.JournalPath")
		}
		hdr, done, validEnd, stats, err := lotrun.ReplayJournalFS(opt.FS, opt.JournalPath)
		if err != nil {
			return nil, err
		}
		if hdr.LotSeed != lotSeed || hdr.Devices != len(lot) || hdr.FaultP != faultP {
			return nil, fmt.Errorf("netfloor: journal is for a different lot (seed %d devices %d faultp %g; resuming seed %d devices %d faultp %g)",
				hdr.LotSeed, hdr.Devices, hdr.FaultP, lotSeed, len(lot), faultP)
		}
		if hdr.ModelVersion != 0 {
			return nil, fmt.Errorf("netfloor: journal pins calibration version %d; the single-lot coordinator runs the base model only: %w",
				hdr.ModelVersion, lotrun.ErrModelMismatch)
		}
		if hdr.Fingerprint != 0 && hdr.Fingerprint != c.Engine.Fingerprint() {
			return nil, fmt.Errorf("netfloor: journal was written by a differently calibrated engine (fingerprint %x, resuming %x): %w",
				hdr.Fingerprint, c.Engine.Fingerprint(), lotrun.ErrModelMismatch)
		}
		for i, res := range done {
			res := res
			results[i] = &res
		}
		rep.Replayed = stats.Records
		rep.Replay = stats
		if jr, err = lotrun.ResumeJournalFS(opt.FS, opt.JournalPath, validEnd); err != nil {
			return nil, err
		}
	} else if opt.JournalPath != "" {
		var err error
		jr, err = lotrun.CreateJournalFS(opt.FS, opt.JournalPath, lotrun.JournalHeader{
			Type: "header", Version: lotrun.JournalVersion,
			LotSeed: lotSeed, Devices: len(lot), FaultP: faultP,
			Fingerprint: c.Engine.Fingerprint(),
		})
		if err != nil {
			// A journal that cannot even be created is the same storage
			// fault as one dying mid-lot: run the lot journal-less in
			// degraded mode rather than refuse it.
			c.logf("journal create failed, running journal-less: %v", err)
			rep.JournalDegraded = true
			rep.JournalErr = err.Error()
			jr = nil
		}
	}
	hadJournal := jr != nil
	defer func() {
		if jr != nil {
			jr.Close()
		}
	}()

	var pending []int
	for i := range lot {
		if results[i] == nil {
			pending = append(pending, i)
		}
	}

	rs := &runState{
		disp:   NewDispatcher(pending, len(lot)),
		out:    make(chan floor.DeviceResult, len(lot)),
		doneCh: make(chan struct{}),
	}

	var wd *lotrun.Watchdog
	if c.Engine.Gate != nil && !opt.Watchdog.Disabled {
		wd = lotrun.NewWatchdog(c.Engine.Gate, opt.Watchdog)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	siteStats := make([]*SiteNetStats, len(opt.Remotes))
	breakers := make([]*lotrun.Breaker, len(opt.Remotes))
	var wg sync.WaitGroup
	for s, addr := range opt.Remotes {
		siteStats[s] = &SiteNetStats{Site: s, Addr: addr}
		breakers[s] = lotrun.NewBreaker(opt.Breaker)
		wg.Add(1)
		go func(s int, addr string) {
			defer wg.Done()
			c.siteLoop(runCtx, rs, &opt, hello, s, addr, siteStats[s], breakers[s], lotSeed, lot, faults)
		}(s, addr)
	}
	if !opt.DisableLocalFallback {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.localFallback(runCtx, rs, &opt, lotSeed, lot, faults, len(opt.Remotes))
		}()
	}

	// Collector: the single goroutine path that commits results. Dedup
	// already happened in deliver(); everything read here is
	// exactly-once.
	needed := len(pending)
	received := 0
collect:
	for received < needed {
		select {
		case res := <-rs.out:
			if jr != nil {
				if err := jr.CommitRetry(res, opt.JournalRetry); err != nil {
					// Persistent journal failure: degrade to journal-less
					// mode and finish the lot — bins stay a pure function
					// of (seed, index), only crash-resume is lost.
					jr.Close()
					jr = nil
					rep.JournalDegraded = true
					rep.JournalErr = err.Error()
					c.logf("journal degraded, continuing journal-less: %v", err)
				}
			}
			results[res.Index] = &res
			received++
			if opt.OnResult != nil {
				opt.OnResult(res)
			}
			if wd != nil && res.CleanD >= 0 {
				if alarm := wd.Observe(res.Index, res.CleanD); alarm != nil {
					rep.Alarms = append(rep.Alarms, *alarm)
					if opt.OnDrift != nil {
						opt.OnDrift(*alarm)
					}
				}
			}
		case <-runCtx.Done():
			break collect
		}
	}
	close(rs.doneCh)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		committed := 0
		for _, r := range results {
			if r != nil {
				committed++
			}
		}
		return nil, fmt.Errorf("netfloor: lot interrupted with %d of %d devices committed: %w",
			committed, len(lot), err)
	}
	for i, r := range results {
		if r == nil {
			return nil, fmt.Errorf("netfloor: device %d was never screened", i)
		}
	}

	// Fold in index order: bins are identical no matter which site (or
	// the local fallback) screened each device.
	lotRep := c.Engine.NewReport(len(lot))
	for _, r := range results {
		lotRep.Fold(*r)
	}
	if hadJournal {
		lotRep.Load.JournalS = float64(len(lot)) * opt.JournalSyncS
	}
	lotRep.JournalDegraded = rep.JournalDegraded
	lotRep.JournalErr = rep.JournalErr
	rs.mu.Lock()
	rep.Net = rs.net
	rs.mu.Unlock()
	lotRep.Load.NetworkS = float64(rep.Net.Assigns) * opt.ModelRTTS
	for s, st := range siteStats {
		st.Trips = breakers[s].TotalTrips()
		st.QuarantineS = breakers[s].QuarantineTotalS()
		lotRep.Load.QuarantineS += st.QuarantineS
		rep.Sites = append(rep.Sites, *st)
		rep.Trips = append(rep.Trips, breakers[s].Events()...)
	}
	sort.Slice(rep.Trips, func(i, j int) bool { return rep.Trips[i].AfterDevice < rep.Trips[j].AfterDevice })
	if err := c.Engine.Finish(lotRep); err != nil {
		return nil, err
	}
	rep.Lot = lotRep
	return rep, nil
}

// siteLoop owns one remote for the duration of the lot: connect,
// handshake, assign until the lot drains, reconnect with backoff on any
// failure, release-and-requeue anything in flight when the connection
// dies.
func (c *Coordinator) siteLoop(ctx context.Context, rs *runState, opt *Options, hello Hello,
	site int, addr string, st *SiteNetStats, br *lotrun.Breaker,
	lotSeed int64, lot []*core.Device, faults *floor.FaultModel) {

	jitter := rand.New(rand.NewSource(parallel.SubSeed(opt.NetSeed, site)))
	attempt := 0
	connected := false
	settled := false
	defer func() {
		if !settled {
			rs.settled.Add(1)
		}
	}()

	backoffSleep := func() bool {
		d := float64(opt.RetryBase)
		for i := 0; i < attempt; i++ {
			d *= opt.RetryFactor
			if d >= float64(opt.RetryMax) {
				d = float64(opt.RetryMax)
				break
			}
		}
		d *= 1 + opt.RetryJitter*jitter.Float64()
		select {
		case <-time.After(time.Duration(d)):
			return true
		case <-rs.doneCh:
			return false
		case <-ctx.Done():
			return false
		}
	}

	for {
		select {
		case <-rs.doneCh:
			return
		case <-ctx.Done():
			return
		default:
		}

		mc, siteBatch, err := c.connect(ctx, opt, hello, addr)
		if !settled {
			settled = true
			rs.settled.Add(1)
		}
		if err != nil {
			var perm *permanentError
			if errors.As(err, &perm) {
				st.Err = perm.msg
				c.logf("site %d (%s): abandoned: %s", site, addr, perm.msg)
				return
			}
			st.DialFails++
			rs.addNet(func(n *NetStats) { n.DialFails++ })
			attempt++
			if !backoffSleep() {
				return
			}
			continue
		}
		if connected {
			st.Reconnects++
			rs.addNet(func(n *NetStats) { n.Reconnects++ })
		}
		connected = true
		attempt = 0
		kBatch := opt.Batch
		if siteBatch < kBatch {
			kBatch = siteBatch
		}
		rs.alive.Add(1)
		err = c.serveAssignments(ctx, rs, opt, site, st, br, mc, kBatch)
		rs.alive.Add(-1)
		mc.Close()
		if errors.Is(err, errLotDone) || ctx.Err() != nil {
			return
		}
		select {
		case <-rs.doneCh:
			return
		default:
		}
		c.logf("site %d (%s): connection lost (%v), reconnecting", site, addr, err)
		attempt++
		if !backoffSleep() {
			return
		}
	}
}

// permanentError marks a site that must not be retried (identity
// mismatch: its engine would bin differently). Its code preserves the
// wire classification, so errors.Is(err, ErrModelMismatch) works on a
// model-mismatch rejection — the caller's cue to resolve a calibration
// version rather than redial.
type permanentError struct {
	msg  string
	code string
}

func (e *permanentError) Error() string { return e.msg }

func (e *permanentError) Unwrap() error {
	if e.code == CodeModelMismatch {
		return ErrModelMismatch
	}
	return nil
}

// connect dials and handshakes one site, returning the connection and the
// site's advertised batch capability (1 when the site did not advertise
// one — it screens one device per Assign).
func (c *Coordinator) connect(ctx context.Context, opt *Options, hello Hello, addr string) (*MsgConn, int, error) {
	dctx, cancel := context.WithTimeout(ctx, opt.RequestTimeout)
	defer cancel()
	conn, err := opt.Dialer(dctx, addr)
	if err != nil {
		return nil, 0, err
	}
	mc := NewMsgConn(conn)
	if err := mc.Write(&Envelope{Type: MsgHello, Hello: &hello}, opt.IdleTimeout); err != nil {
		mc.Close()
		return nil, 0, err
	}
	env, err := mc.Read(opt.IdleTimeout)
	if err != nil {
		mc.Close()
		return nil, 0, err
	}
	switch env.Type {
	case MsgHelloAck:
		if env.Hello == nil || *env.Hello != hello {
			mc.Close()
			return nil, 0, &permanentError{msg: fmt.Sprintf("site %s acked a different identity", addr)}
		}
		siteBatch := env.Batch
		if siteBatch < 1 {
			siteBatch = 1
		}
		return mc, siteBatch, nil
	case MsgError:
		mc.Close()
		return nil, 0, &permanentError{msg: env.Err, code: env.Code}
	default:
		mc.Close()
		return nil, 0, fmt.Errorf("netfloor: handshake: expected hello_ack, got %s", env.Type)
	}
}

// serveAssignments drives one healthy connection: pull an index (hedging
// stragglers when the queue is dry), assign it, await the result. With
// kBatch > 1 (this coordinator batches and the site advertised capacity)
// it instead pulls up to kBatch fresh indices per assignment; hedges stay
// single-device so the dedup wastes at most one screening. Returns
// errLotDone after a graceful drain, or the connection's fatal error.
func (c *Coordinator) serveAssignments(ctx context.Context, rs *runState, opt *Options,
	site int, st *SiteNetStats, br *lotrun.Breaker, mc *MsgConn, kBatch int) error {

	var seq uint64
	lastHeard := time.Now()
	lastBeat := time.Now()

	for {
		select {
		case <-rs.doneCh:
			c.drain(mc, opt, site, st)
			return errLotDone
		case <-ctx.Done():
			c.drain(mc, opt, site, st)
			return ctx.Err()
		default:
		}

		// Quarantined site: charge the modeled backoff and let the next
		// device be the half-open probe insertion.
		if br.Open() {
			br.BeginProbe()
		}

		if kBatch > 1 {
			if idxs := rs.disp.NextBatch(kBatch); len(idxs) > 0 {
				seq++
				st.Assigns++
				rs.addNet(func(n *NetStats) { n.Assigns++ })
				err := c.assignAwaitBatch(rs, opt, site, st, br, mc, idxs, seq, &lastHeard, &lastBeat)
				requeued := false
				for _, idx := range idxs {
					if rs.disp.Release(idx) {
						requeued = true
					}
				}
				if err == nil {
					continue
				}
				if requeued {
					rs.addNet(func(n *NetStats) { n.Reassigned++ })
				}
				rs.addNet(func(n *NetStats) { n.Retries++ })
				st.Retries++
				if errors.Is(err, errRequestTimeout) {
					continue
				}
				return err
			}
			// Queue dry: fall through to the single-device path, which
			// hedges stragglers.
		}

		idx, hedged, ok := rs.disp.Next(true)
		if !ok {
			// Nothing to hand out: either the lot is finishing elsewhere
			// or every in-flight index is already hedged. Idle-poll: keep
			// reading (draining the site's heartbeats — with a synchronous
			// in-memory transport an unread beacon would block the site)
			// and beacon back so the site's idle timer stays fresh.
			if time.Since(lastBeat) >= opt.HeartbeatInterval {
				if err := mc.Write(&Envelope{Type: MsgHeartbeat}, opt.HeartbeatInterval); err != nil {
					return err
				}
				lastBeat = time.Now()
			}
			env, err := mc.Read(opt.HeartbeatInterval)
			if err != nil {
				if isTimeout(err) {
					if time.Since(lastHeard) > opt.IdleTimeout {
						return errConnDead
					}
					continue
				}
				return err
			}
			lastHeard = time.Now()
			switch {
			case env.Type == MsgResult && env.Result != nil:
				// A straggler result from a previous assignment on this
				// connection: commit-or-dedup it like any other.
				if rs.deliver(*env.Result, site) {
					st.Devices++
					st.Insertions += env.Result.Insertions
				}
			case env.Type == MsgDrain:
				// The site announced its own graceful shutdown: end this
				// connection now and let siteLoop's backoff re-dial — the
				// alternative is waiting out the idle timeout on a peer that
				// already said goodbye.
				c.logf("site %d: announced drain, closing connection", site)
				return errSiteDraining
			}
			continue
		}

		seq++
		st.Assigns++
		rs.addNet(func(n *NetStats) {
			n.Assigns++
			if hedged {
				n.Hedges++
			}
		})
		err := c.assignAwait(rs, opt, site, st, br, mc, idx, seq, &lastHeard, &lastBeat)
		requeued := rs.disp.Release(idx)
		if err == nil {
			continue
		}
		if requeued {
			rs.addNet(func(n *NetStats) { n.Reassigned++ })
		}
		rs.addNet(func(n *NetStats) { n.Retries++ })
		st.Retries++
		if errors.Is(err, errRequestTimeout) {
			// The connection is alive (heartbeats flowed) but the result
			// never came — a dropped frame. Retry on the same connection;
			// the site's result cache makes the re-screen free.
			continue
		}
		return err
	}
}

// assignAwait sends one assignment and waits for its result, absorbing
// heartbeats and stray results meanwhile.
func (c *Coordinator) assignAwait(rs *runState, opt *Options, site int, st *SiteNetStats,
	br *lotrun.Breaker, mc *MsgConn, idx int, seq uint64, lastHeard, lastBeat *time.Time) error {

	if err := mc.Write(&Envelope{Type: MsgAssign, Seq: seq, Device: idx}, opt.IdleTimeout); err != nil {
		return err
	}
	deadline := time.Now().Add(opt.RequestTimeout)
	for {
		if time.Now().After(deadline) {
			return errRequestTimeout
		}
		select {
		case <-rs.doneCh:
			// Lot finished elsewhere while this (possibly hedged) request
			// was in flight.
			return errRequestTimeout
		default:
		}
		env, err := mc.Read(opt.HeartbeatInterval)
		if err != nil {
			if isTimeout(err) {
				if time.Since(*lastHeard) > opt.IdleTimeout {
					return errConnDead
				}
				continue
			}
			return err
		}
		*lastHeard = time.Now()
		switch env.Type {
		case MsgHeartbeat:
		case MsgResult:
			if env.Result == nil {
				continue
			}
			res := *env.Result
			br.Record(res)
			if rs.deliver(res, site) {
				st.Devices++
				st.Insertions += res.Insertions
			}
			if env.Device == idx {
				return nil
			}
		case MsgError:
			if env.Device == idx {
				return fmt.Errorf("netfloor: site rejected device %d: %s", idx, env.Err)
			}
		case MsgDrain:
			// Site-initiated graceful shutdown with our assignment still in
			// flight: give it up — the caller releases and requeues the
			// index for another site.
			return errSiteDraining
		}
	}
}

// assignAwaitBatch sends one batched assignment and waits until every
// device in it has either returned a result or the deadline (scaled by the
// batch size — the wall budget per device matches the serial path's)
// expires. Results for other in-flight work are absorbed like assignAwait.
func (c *Coordinator) assignAwaitBatch(rs *runState, opt *Options, site int, st *SiteNetStats,
	br *lotrun.Breaker, mc *MsgConn, idxs []int, seq uint64, lastHeard, lastBeat *time.Time) error {

	if err := mc.Write(&Envelope{Type: MsgAssign, Seq: seq, Device: idxs[0], Devices: idxs}, opt.IdleTimeout); err != nil {
		return err
	}
	pending := make(map[int]bool, len(idxs))
	for _, idx := range idxs {
		pending[idx] = true
	}
	deadline := time.Now().Add(time.Duration(len(idxs)) * opt.RequestTimeout)
	for len(pending) > 0 {
		if time.Now().After(deadline) {
			return errRequestTimeout
		}
		select {
		case <-rs.doneCh:
			return errRequestTimeout
		default:
		}
		env, err := mc.Read(opt.HeartbeatInterval)
		if err != nil {
			if isTimeout(err) {
				if time.Since(*lastHeard) > opt.IdleTimeout {
					return errConnDead
				}
				continue
			}
			return err
		}
		*lastHeard = time.Now()
		switch env.Type {
		case MsgHeartbeat:
		case MsgResult:
			if env.Result == nil {
				continue
			}
			res := *env.Result
			br.Record(res)
			if rs.deliver(res, site) {
				st.Devices++
				st.Insertions += res.Insertions
			}
			delete(pending, env.Device)
		case MsgError:
			if pending[env.Device] {
				return fmt.Errorf("netfloor: site rejected device %d: %s", env.Device, env.Err)
			}
		case MsgDrain:
			return errSiteDraining
		}
	}
	return nil
}

// drain tells the site no more assignments are coming, waiting briefly
// for the ack; purely a courtesy — the site would time out on its own.
// A failed drain write is recorded and logged rather than dropped: the
// site will wind down anyway, but the operator should see the failure.
func (c *Coordinator) drain(mc *MsgConn, opt *Options, site int, st *SiteNetStats) {
	if err := mc.Write(&Envelope{Type: MsgDrain}, opt.HeartbeatInterval); err != nil {
		if st != nil {
			st.DrainFails++
		}
		c.logf("site %d: drain send failed: %v", site, err)
		return
	}
	deadline := time.Now().Add(2 * opt.HeartbeatInterval)
	for time.Now().Before(deadline) {
		env, err := mc.Read(opt.HeartbeatInterval)
		if err != nil {
			return
		}
		if env.Type == MsgDrainAck {
			return
		}
	}
}

// localFallback screens devices on the coordinator itself, but only while
// no remote is connected — the availability backstop: with every site
// down or partitioned, the lot still finishes, bit-identically, because
// the local engine computes the same deterministic function.
func (c *Coordinator) localFallback(ctx context.Context, rs *runState, opt *Options,
	lotSeed int64, lot []*core.Device, faults *floor.FaultModel, remotes int) {

	localOrdinal := remotes // local results carry the next ordinal after the sites
	poll := opt.HeartbeatInterval
	// zeroSince tracks how long the floor has been remote-less. The
	// fallback waits out one IdleTimeout before screening — the same
	// threshold that declares a single connection dead — so a transient
	// dip (a site mid-reconnect) does not pull the lot local.
	var zeroSince time.Time
	for {
		select {
		case <-rs.doneCh:
			return
		case <-ctx.Done():
			return
		default:
		}
		if rs.alive.Load() != 0 || int(rs.settled.Load()) < remotes {
			zeroSince = time.Time{}
			select {
			case <-time.After(poll):
			case <-rs.doneCh:
				return
			case <-ctx.Done():
				return
			}
			continue
		}
		if remotes > 0 {
			if zeroSince.IsZero() {
				zeroSince = time.Now()
			}
			if time.Since(zeroSince) < opt.IdleTimeout {
				select {
				case <-time.After(poll):
				case <-rs.doneCh:
					return
				case <-ctx.Done():
					return
				}
				continue
			}
		}
		idx, _, got := rs.disp.Next(true)
		if !got {
			select {
			case <-time.After(poll):
			case <-rs.doneCh:
				return
			case <-ctx.Done():
				return
			}
			continue
		}
		res := ScreenSupervised(ctx, c.Engine, lotSeed, idx, lot[idx], faults, opt.DeviceTimeout)
		if res.Err != "" && ctx.Err() != nil {
			rs.disp.Release(idx)
			return // truncated by shutdown: never commit
		}
		if rs.deliver(res, localOrdinal) {
			rs.addNet(func(n *NetStats) { n.LocalDevices++ })
		}
		rs.disp.Release(idx)
	}
}
