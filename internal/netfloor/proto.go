// Package netfloor is the distributed test floor: one coordinator screens
// a production lot across N remote tester sites over TCP, and stays
// correct when the network does not. The design extends the determinism
// contract of internal/lotrun across the wire:
//
//   - assignments are keyed by (lot seed, device index) alone — a site
//     rebuilds the identical lot and engine from the shared engineering
//     seed, so the wire never carries a device, only its index;
//   - delivery is at-least-once (timeouts retry, reconnects re-send,
//     faulty transports duplicate), and screening is a deterministic pure
//     function of the key, so any two results for the same index agree;
//   - commit is exactly-once: a single collector dedups results by device
//     index before the fsync'd lotrun journal sees them.
//
// Together these make serial, local-concurrent, distributed and
// killed-and-resumed runs produce bit-identical bins under arbitrary
// message drop, duplication, corruption, delay and partition.
package netfloor

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/floor"
)

// ProtocolVersion is carried in every Hello; coordinator and site must
// match exactly.
const ProtocolVersion = 1

// maxFrame bounds one message on the wire. A corrupted length prefix is
// overwhelmingly likely to exceed it, turning bit rot into a clean
// connection reset instead of a multi-gigabyte allocation.
const maxFrame = 4 << 20

// MsgType tags the wire messages.
type MsgType string

const (
	// MsgHello opens a connection: the coordinator states the lot identity
	// (seed, size, fault load, engine fingerprint) it intends to screen.
	MsgHello MsgType = "hello"
	// MsgHelloAck accepts the Hello, echoing the identity and naming the
	// site.
	MsgHelloAck MsgType = "hello_ack"
	// MsgAssign asks the site to screen one device index.
	MsgAssign MsgType = "assign"
	// MsgResult returns a screened DeviceResult.
	MsgResult MsgType = "result"
	// MsgHeartbeat is the liveness beacon either side sends while idle or
	// busy; it carries no payload and resets the receiver's idle timer.
	MsgHeartbeat MsgType = "heartbeat"
	// MsgDrain announces a graceful shutdown: no more assignments follow.
	MsgDrain MsgType = "drain"
	// MsgDrainAck confirms the drain; the site closes after sending it.
	MsgDrainAck MsgType = "drain_ack"
	// MsgError rejects the peer (identity mismatch, bad assignment).
	MsgError MsgType = "error"
	// MsgModelReq asks the coordinator for the calibration artifact of a
	// model version the site does not have cached (sent in response to an
	// Assign naming an unknown version).
	MsgModelReq MsgType = "model_req"
	// MsgModel delivers a serialized calibration artifact for one version.
	MsgModel MsgType = "model"
)

// Error codes carried in Envelope.Code alongside MsgError, so a peer can
// distinguish failure classes and react: a model mismatch needs an
// upgrade (fetch the right artifact, rebuild the engine), an identity
// mismatch is a misconfiguration, and anything uncoded is transport-level
// and retryable.
const (
	// CodeModelMismatch: the engines' calibration fingerprints disagree —
	// same board, same protocol, different screening semantics.
	CodeModelMismatch = "model_mismatch"
	// CodeIdentityMismatch: protocol version, device-pool size or fault
	// load disagree — the peers are not describing the same floor.
	CodeIdentityMismatch = "identity_mismatch"
)

// ErrModelMismatch is the typed form of a CodeModelMismatch rejection:
// the peer refused to pair because the calibration models differ. Callers
// detect it with errors.Is and react by upgrading (resolving the right
// model version) instead of retrying.
var ErrModelMismatch = errors.New("netfloor: calibration model mismatch")

// Hello is the lot identity both sides must agree on before any device is
// assigned.
type Hello struct {
	Version     int     `json:"version"`
	LotSeed     int64   `json:"lot_seed"`
	Devices     int     `json:"devices"`
	FaultP      float64 `json:"fault_p"`
	Fingerprint uint64  `json:"fingerprint"`
	// MultiLot announces a multi-lot coordinator (internal/lotserver): the
	// connection will carry assignments for many lots, each Assign naming
	// its own lot seed. The site then pins only the engine fingerprint,
	// fault load and device-pool size — LotSeed is per-assignment, not
	// per-connection — and keys its result cache by (seed, index).
	MultiLot bool `json:"multi_lot,omitempty"`
}

// Envelope is the one wire message shape; Type selects which fields are
// meaningful.
type Envelope struct {
	Type   MsgType             `json:"type"`
	Seq    uint64              `json:"seq,omitempty"`
	Hello  *Hello              `json:"hello,omitempty"`
	Device int                 `json:"device"`
	Result *floor.DeviceResult `json:"result,omitempty"`
	Site   string              `json:"site,omitempty"`
	Err    string              `json:"err,omitempty"`
	// Seed is the assignment's lot seed and Lot its lot ID — set on
	// Assign/Result frames of a multi-lot connection, zero otherwise.
	Seed int64  `json:"seed,omitempty"`
	Lot  string `json:"lot,omitempty"`
	// Code classifies a MsgError (see the Code* constants); empty on
	// legacy peers, which reads as "uncoded: treat as before".
	Code string `json:"code,omitempty"`
	// Model is the calibration version an Assign screens under (0 = the
	// base model pinned in the handshake) and the version a
	// MsgModelReq/MsgModel pair is fetching; ModelFP is the expected
	// engine fingerprint for that version, so a site can verify the
	// artifact it rebuilt screens identically.
	Model   int    `json:"model,omitempty"`
	ModelFP uint64 `json:"model_fp,omitempty"`
	// Artifact is the serialized calibration artifact on a MsgModel frame
	// (modelreg.EncodeArtifact bytes; frame CRC covers integrity).
	Artifact json.RawMessage `json:"artifact,omitempty"`
	// Devices carries a batched assignment: screen all of these indices
	// through the batched kernel and return one MsgResult per device (all
	// tagged with this frame's Seq). Empty on a single-device Assign —
	// legacy frames keep using Device. The capability rides on the
	// handshake's envelopes, not inside Hello (Hello is compared by value
	// on both sides, so extending it would break pairing with existing
	// peers): a site advertises its maximum batch via Batch on the
	// MsgHelloAck frame, and a coordinator only sends Devices to a site
	// that advertised Batch > 1.
	Devices []int `json:"devices,omitempty"`
	// Batch on a MsgHelloAck frame is the site's maximum devices per
	// batched assignment (0 or 1: the site screens one device per Assign).
	Batch int `json:"batch,omitempty"`
}

// ErrCorruptFrame reports a frame whose payload CRC did not verify — the
// stream can no longer be trusted and the connection must be reset.
var ErrCorruptFrame = errors.New("netfloor: corrupt frame (payload CRC mismatch)")

// MsgConn frames messages over a net.Conn: a 4-byte big-endian payload
// length, a 4-byte IEEE CRC32 of the payload, then the JSON payload. Each
// frame goes out in a single Write, which keeps the fault-injecting
// transport's per-write faults aligned with whole messages (a dropped
// write is a lost message, a doubled write a duplicated one — exactly the
// failure modes a datagram network would produce).
//
// The frame layer is payload-agnostic (WriteFrame/ReadFrame), so other
// protocols — the lot server's client front door — ride the same framing
// and CRC discipline with their own envelope shapes.
type MsgConn struct {
	c net.Conn
	r *bufio.Reader

	wmu sync.Mutex
}

// NewMsgConn wraps a connection with the CRC framing.
func NewMsgConn(c net.Conn) *MsgConn {
	return &MsgConn{c: c, r: bufio.NewReader(c)}
}

// WriteFrame sends one raw payload frame; safe for concurrent use
// (heartbeat senders share the conn with the request path). writeTimeout
// bounds how long a stalled peer can block the sender (0 = no deadline).
func (m *MsgConn) WriteFrame(payload []byte, writeTimeout time.Duration) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("netfloor: frame of %d bytes exceeds %d", len(payload), maxFrame)
	}
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)

	m.wmu.Lock()
	defer m.wmu.Unlock()
	if writeTimeout > 0 {
		m.c.SetWriteDeadline(time.Now().Add(writeTimeout))
	}
	if _, err := m.c.Write(frame); err != nil {
		return fmt.Errorf("netfloor: write frame: %w", err)
	}
	return nil
}

// ReadFrame receives one raw payload frame, waiting at most idle for bytes
// to arrive — the liveness contract: a healthy peer heartbeats well inside
// idle, so an expired deadline means dead or partitioned, not slow.
func (m *MsgConn) ReadFrame(idle time.Duration) ([]byte, error) {
	if idle > 0 {
		m.c.SetReadDeadline(time.Now().Add(idle))
	}
	var hdr [8]byte
	if _, err := io.ReadFull(m.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("netfloor: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > maxFrame {
		return nil, fmt.Errorf("netfloor: frame of %d bytes exceeds %d (corrupt length?)", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(m.r, payload); err != nil {
		return nil, fmt.Errorf("netfloor: read frame payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, ErrCorruptFrame
	}
	return payload, nil
}

// Write sends one protocol envelope.
func (m *MsgConn) Write(env *Envelope, writeTimeout time.Duration) error {
	payload, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("netfloor: marshal %s: %w", env.Type, err)
	}
	if err := m.WriteFrame(payload, writeTimeout); err != nil {
		return fmt.Errorf("netfloor: %s: %w", env.Type, err)
	}
	return nil
}

// Read receives one protocol envelope.
func (m *MsgConn) Read(idle time.Duration) (*Envelope, error) {
	payload, err := m.ReadFrame(idle)
	if err != nil {
		return nil, err
	}
	var env Envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return nil, fmt.Errorf("netfloor: decode frame: %w", err)
	}
	return &env, nil
}

// Close closes the underlying connection.
func (m *MsgConn) Close() error { return m.c.Close() }
