package netfloor

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/floor"
	"repro/internal/modelreg"
)

// Site is one remote tester site: it owns a screening engine and the full
// lot (rebuilt locally from the shared engineering seed — the wire never
// carries a device), and serves Assign requests by screening the named
// index. Screening is a deterministic pure function of (lot seed, index),
// so re-screening a re-delivered assignment is harmless; the result cache
// just makes it instant.
//
// A site serves both floors: the single-lot Coordinator pins the lot seed
// in the handshake, while a multi-lot server (internal/lotserver) opens
// the connection with Hello.MultiLot and names a lot seed on every Assign
// — the cache is keyed by (seed, index), so lots never collide.
type Site struct {
	// Name identifies the site in coordinator reports (default the
	// listener address).
	Name string
	// Engine is the screening engine; its Fingerprint must match the
	// coordinator's.
	Engine *floor.Engine
	// Lot is the full production lot, index-aligned with the coordinator's.
	Lot []*core.Device
	// Faults is the insertion fault model (may be nil); its TotalP must
	// match the coordinator's.
	Faults *floor.FaultModel
	// LotSeed is the lot's device-seed root.
	LotSeed int64
	// HeartbeatInterval is how often the site beacons while screening or
	// idle (default 1s).
	HeartbeatInterval time.Duration
	// IdleTimeout is how long the site waits without hearing anything from
	// the coordinator (not even a heartbeat) before dropping the
	// connection (default 10 × HeartbeatInterval).
	IdleTimeout time.Duration
	// DeviceTimeout bounds one device's screening wall time (0 = none),
	// mirroring lotrun.Options.DeviceTimeout.
	DeviceTimeout time.Duration
	// MaxBatch is the most devices this site accepts per batched
	// assignment, advertised to the coordinator during the handshake. 0 or
	// 1 keeps the site strictly one-device-per-Assign; a larger value lets
	// a batching coordinator amortize the screening kernels across up to
	// MaxBatch devices per round trip. Bins are identical either way.
	MaxBatch int
	// ModelCacheSize bounds how many versioned model engines the site
	// keeps built at once (default 4); least-recently-used versions are
	// evicted and re-fetched on demand. The base engine (version 0) is
	// never evicted — it is the site's own identity.
	ModelCacheSize int
	// Logf, when set, receives site-side progress lines.
	Logf func(format string, args ...any)

	mu          sync.Mutex
	cache       map[siteCacheKey]floor.DeviceResult
	engines     map[int]*modelEngine
	engineClock uint64
	stats       ServeStats
	draining    chan struct{}
}

// siteCacheKey identifies one screened device. Multi-lot connections
// carry a lot seed per assignment and pin each lot to a model version, so
// the cache must conflate neither two lots' screenings of the same index
// nor two versions' screenings of the same device.
type siteCacheKey struct {
	seed  int64
	idx   int
	model int
}

// modelEngine is one cached versioned engine with its LRU stamp.
type modelEngine struct {
	eng *floor.Engine
	use uint64
}

// ServeStats counts the site-side write failures that previously vanished
// silently: a heartbeat or drain-ack write that errors means the peer may
// be waiting on a frame that will never arrive, and the operator should
// see that in the site's story rather than infer it from coordinator
// retries.
type ServeStats struct {
	// HeartbeatFails counts liveness beacons that failed to send (each one
	// also closes its connection so the peer finds out promptly).
	HeartbeatFails int
	// DrainAckFails counts drain acknowledgements that failed to send.
	DrainAckFails int
	// ErrorSendFails counts MsgError rejections that failed to send.
	ErrorSendFails int
	// DrainNotifyFails counts site-initiated drain announcements that
	// failed to send during a graceful shutdown.
	DrainNotifyFails int
	// ModelFetches counts calibration artifacts requested over the wire
	// (assignments naming a version this site had not built yet).
	ModelFetches int
	// ModelFails counts artifacts that failed to decode, build or verify
	// against their expected fingerprint.
	ModelFails int
}

// Stats returns a snapshot of the site's write-failure counters.
func (s *Site) Stats() ServeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Site) record(f func(*ServeStats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Drain begins a graceful shutdown: every connection finishes its
// in-flight device, flushes the Result frame, announces the drain to its
// peer and closes cleanly. Safe to call more than once and from signal
// handlers. Serve keeps accepting until its context cancels, so callers
// pair Drain with a context cancel (or listener close) once connections
// have wound down.
func (s *Site) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining == nil {
		s.draining = make(chan struct{})
	}
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
}

// drainingNow reports whether Drain has been called.
func (s *Site) drainingNow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining == nil {
		return false
	}
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

func (s *Site) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Site) heartbeat() time.Duration {
	if s.HeartbeatInterval > 0 {
		return s.HeartbeatInterval
	}
	return time.Second
}

func (s *Site) idle() time.Duration {
	if s.IdleTimeout > 0 {
		return s.IdleTimeout
	}
	return 10 * s.heartbeat()
}

// Hello is the identity this site will insist on during the handshake.
func (s *Site) hello() Hello {
	faultP := 0.0
	if s.Faults != nil {
		faultP = s.Faults.TotalP()
	}
	return Hello{
		Version:     ProtocolVersion,
		LotSeed:     s.LotSeed,
		Devices:     len(s.Lot),
		FaultP:      faultP,
		Fingerprint: s.Engine.Fingerprint(),
	}
}

// Validate checks the site is runnable.
func (s *Site) Validate() error {
	if s.Engine == nil {
		return fmt.Errorf("netfloor: site needs an engine")
	}
	if err := s.Engine.Validate(); err != nil {
		return err
	}
	if len(s.Lot) == 0 {
		return fmt.Errorf("netfloor: site has an empty lot")
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Serve accepts coordinator connections on ln until ctx is cancelled,
// handling each on its own goroutine (a coordinator reconnecting after a
// partition gets a fresh connection while the old one times out).
func (s *Site) Serve(ctx context.Context, ln net.Listener) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Name == "" {
		s.Name = ln.Addr().String()
	}
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("netfloor: accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.ServeConn(ctx, conn); err != nil && ctx.Err() == nil {
				s.logf("site %s: connection ended: %v", s.Name, err)
			}
		}()
	}
}

// handshake validates the coordinator's Hello against this site's
// identity. A multi-lot coordinator pins the engine fingerprint, fault
// load and device-pool size but names its lot seeds per-assignment, so
// LotSeed is not compared in that mode. A refusal carries a typed code:
// a pure fingerprint disagreement is CodeModelMismatch (the peer needs a
// different calibration version, an upgrade problem), anything else is
// CodeIdentityMismatch (a misconfigured floor).
func (s *Site) handshake(h *Hello) (multiLot bool, code string, err error) {
	want := s.hello()
	// Normalize away the fields the mode legitimately leaves open, then
	// compare what remains.
	same := *h
	same.MultiLot, same.LotSeed = false, want.LotSeed
	if !h.MultiLot && h.LotSeed != want.LotSeed {
		return false, CodeIdentityMismatch,
			fmt.Errorf("identity mismatch: coordinator %+v, site %+v", *h, want)
	}
	if same == want {
		return h.MultiLot, "", nil
	}
	onlyFP := same
	onlyFP.Fingerprint = want.Fingerprint
	if onlyFP == want {
		return false, CodeModelMismatch,
			fmt.Errorf("calibration model mismatch: coordinator fingerprint %016x, site %016x",
				h.Fingerprint, want.Fingerprint)
	}
	return false, CodeIdentityMismatch,
		fmt.Errorf("identity mismatch: coordinator %+v, site %+v", *h, want)
}

// ServeConn handles one coordinator connection: handshake, then a serial
// Assign → screen → Result loop until Drain, error or idle timeout. A
// heartbeat goroutine beacons throughout so the coordinator can tell a
// long-running screen from a dead site.
func (s *Site) ServeConn(ctx context.Context, conn net.Conn) error {
	if err := s.Validate(); err != nil {
		conn.Close()
		return err
	}
	if s.Name == "" {
		s.Name = conn.LocalAddr().String()
	}
	mc := NewMsgConn(conn)
	defer mc.Close()

	// Handshake: the coordinator speaks first; refuse any identity
	// mismatch — a differently calibrated engine would bin differently,
	// silently breaking the lot's determinism contract.
	env, err := mc.Read(s.idle())
	if err != nil {
		return fmt.Errorf("netfloor: handshake read: %w", err)
	}
	if env.Type != MsgHello || env.Hello == nil {
		return fmt.Errorf("netfloor: expected hello, got %s", env.Type)
	}
	multiLot, hcode, herr := s.handshake(env.Hello)
	if herr != nil {
		if werr := mc.Write(&Envelope{Type: MsgError, Site: s.Name, Code: hcode, Err: herr.Error()}, s.heartbeat()); werr != nil {
			s.record(func(st *ServeStats) { st.ErrorSendFails++ })
			s.logf("site %s: failed to send handshake rejection: %v", s.Name, werr)
		}
		return fmt.Errorf("netfloor: %s", herr)
	}
	ack := *env.Hello // echo the coordinator's identity, multi-lot or not
	if err := mc.Write(&Envelope{Type: MsgHelloAck, Hello: &ack, Site: s.Name, Batch: s.maxBatch()}, s.idle()); err != nil {
		return err
	}

	// Heartbeat beacon: a separate goroutine so beacons keep flowing while
	// a device is on the (simulated) tester. A failed beacon write is
	// recorded and logged — the peer may be waiting on a frame that will
	// never arrive — and closes the conn so the read loop below unblocks.
	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(s.heartbeat())
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if err := mc.Write(&Envelope{Type: MsgHeartbeat, Site: s.Name}, s.heartbeat()); err != nil {
					s.record(func(st *ServeStats) { st.HeartbeatFails++ })
					if hbCtx.Err() == nil {
						s.logf("site %s: heartbeat send failed, closing connection: %v", s.Name, err)
					}
					conn.Close()
					return
				}
			}
		}
	}()
	defer hbWG.Wait()

	// Read at heartbeat granularity (not the full idle timeout) so a
	// graceful drain interrupts an idle connection promptly; lastHeard
	// preserves the idle-timeout contract across the short reads.
	lastHeard := time.Now()
	// pending holds assignments for model versions this connection is
	// still fetching: the first Assign naming an unknown version sends a
	// MsgModelReq, later ones queue behind it, and the MsgModel reply
	// serves them all in arrival order.
	pending := make(map[int][]*Envelope)
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if s.drainingNow() {
			return s.announceDrain(mc)
		}
		env, err := mc.Read(s.heartbeat())
		if err != nil {
			if isTimeout(err) {
				if time.Since(lastHeard) > s.idle() {
					return fmt.Errorf("netfloor: peer silent for over %v", s.idle())
				}
				continue
			}
			if errors.Is(err, ErrCorruptFrame) {
				// The stream is desynchronized; only a reset recovers it.
				return err
			}
			return err
		}
		lastHeard = time.Now()
		switch env.Type {
		case MsgHeartbeat:
			// Liveness only; lastHeard was already refreshed.
		case MsgAssign:
			if bad, ok := s.assignOutOfRange(env); !ok {
				if werr := mc.Write(&Envelope{Type: MsgError, Seq: env.Seq, Device: bad, Site: s.Name,
					Err: fmt.Sprintf("device %d outside lot [0,%d)", bad, len(s.Lot))}, s.heartbeat()); werr != nil {
					s.record(func(st *ServeStats) { st.ErrorSendFails++ })
					s.logf("site %s: failed to send assignment rejection: %v", s.Name, werr)
				}
				continue
			}
			eng := s.Engine
			if env.Model != 0 {
				cached, ok := s.modelEngine(env.Model)
				if !ok {
					pending[env.Model] = append(pending[env.Model], env)
					if len(pending[env.Model]) == 1 {
						s.record(func(st *ServeStats) { st.ModelFetches++ })
						if err := mc.Write(&Envelope{Type: MsgModelReq, Model: env.Model, Site: s.Name}, s.heartbeat()); err != nil {
							return err
						}
					}
					continue
				}
				eng = cached
			}
			if err := s.serveAssign(ctx, mc, env, eng, multiLot); err != nil {
				return err
			}
		case MsgModel:
			queued := pending[env.Model]
			delete(pending, env.Model)
			eng, merr := s.installModel(env.Model, env.ModelFP, env.Artifact)
			if merr != nil {
				s.record(func(st *ServeStats) { st.ModelFails++ })
				s.logf("site %s: model v%d rejected: %v", s.Name, env.Model, merr)
				for _, q := range queued {
					if werr := mc.Write(&Envelope{Type: MsgError, Seq: q.Seq, Device: q.Device, Site: s.Name,
						Code: CodeModelMismatch, Model: env.Model, Err: merr.Error()}, s.heartbeat()); werr != nil {
						s.record(func(st *ServeStats) { st.ErrorSendFails++ })
						return werr
					}
				}
				continue
			}
			for _, q := range queued {
				if err := s.serveAssign(ctx, mc, q, eng, multiLot); err != nil {
					return err
				}
			}
		case MsgDrain:
			if werr := mc.Write(&Envelope{Type: MsgDrainAck, Seq: env.Seq, Site: s.Name}, s.heartbeat()); werr != nil {
				s.record(func(st *ServeStats) { st.DrainAckFails++ })
				s.logf("site %s: failed to ack drain: %v", s.Name, werr)
			}
			return nil
		default:
			// Unknown or misdirected message: ignore — a future protocol
			// may add message types old sites can skip.
		}
	}
}

// announceDrain tells the peer this site is going away — a courtesy
// MsgDrain so the coordinator reassigns immediately instead of waiting
// out its idle timeout — then ends the connection cleanly.
func (s *Site) announceDrain(mc *MsgConn) error {
	if err := mc.Write(&Envelope{Type: MsgDrain, Site: s.Name}, s.heartbeat()); err != nil {
		s.record(func(st *ServeStats) { st.DrainNotifyFails++ })
		s.logf("site %s: failed to announce drain: %v", s.Name, err)
	}
	return nil
}

// maxBatch is the batch capability this site advertises in its handshake
// ack.
func (s *Site) maxBatch() int {
	if s.MaxBatch > 1 {
		return s.MaxBatch
	}
	return 1
}

// assignOutOfRange validates every index an Assign names (single Device or
// batched Devices); on failure it returns the offending index.
func (s *Site) assignOutOfRange(env *Envelope) (int, bool) {
	if len(env.Devices) == 0 {
		if env.Device < 0 || env.Device >= len(s.Lot) {
			return env.Device, false
		}
		return 0, true
	}
	for _, idx := range env.Devices {
		if idx < 0 || idx >= len(s.Lot) {
			return idx, false
		}
	}
	return 0, true
}

// serveAssign screens one assignment — a single device or a batch — on the
// resolved engine and writes one Result frame per device, all under the
// assignment's Seq. The returned error is connection-fatal.
func (s *Site) serveAssign(ctx context.Context, mc *MsgConn, env *Envelope, eng *floor.Engine, multiLot bool) error {
	seed := s.LotSeed
	if multiLot {
		seed = env.Seed
	}
	idxs := env.Devices
	if len(idxs) == 0 {
		idxs = []int{env.Device}
	}
	results, err := s.screenMany(ctx, eng, seed, idxs, env.Model)
	if err != nil {
		// The site is shutting down mid-batch: the results are
		// truncations, not outcomes. Never send them — the coordinator
		// reassigns and re-screens from the same per-device seeds.
		return err
	}
	for i := range results {
		if werr := mc.Write(&Envelope{Type: MsgResult, Seq: env.Seq, Device: results[i].Index,
			Seed: env.Seed, Lot: env.Lot, Model: env.Model, Result: &results[i], Site: s.Name}, s.idle()); werr != nil {
			return werr
		}
	}
	return nil
}

// screenMany resolves a batch of indices against the result cache and
// screens the misses through the engine's batched kernel (or the serial
// supervised path when only one is missing). Cached and fresh results come
// back index-aligned with idxs; fresh complete results are cached with the
// same first-writer-wins race discipline as screen.
func (s *Site) screenMany(ctx context.Context, eng *floor.Engine, seed int64, idxs []int, model int) ([]floor.DeviceResult, error) {
	out := make([]floor.DeviceResult, len(idxs))
	missPos := make([]int, 0, len(idxs))
	batch := make([]floor.BatchDevice, 0, len(idxs))
	s.mu.Lock()
	for i, idx := range idxs {
		if res, ok := s.cache[siteCacheKey{seed: seed, idx: idx, model: model}]; ok {
			out[i] = res
		} else {
			missPos = append(missPos, i)
			batch = append(batch, floor.BatchDevice{Index: idx, Device: s.Lot[idx], Seed: core.DeviceSeed(seed, idx)})
		}
	}
	s.mu.Unlock()
	if len(batch) == 0 {
		return out, nil
	}

	var fresh []floor.DeviceResult
	if len(batch) == 1 {
		fresh = []floor.DeviceResult{ScreenSupervised(ctx, eng, seed, batch[0].Index, s.Lot[batch[0].Index], s.Faults, s.DeviceTimeout)}
	} else {
		fresh = ScreenBatchSupervised(ctx, eng, batch, s.Faults, s.DeviceTimeout)
	}
	truncated := false
	s.mu.Lock()
	if s.cache == nil {
		s.cache = make(map[siteCacheKey]floor.DeviceResult)
	}
	for bi := range fresh {
		res := fresh[bi]
		if res.Err != "" && ctx.Err() != nil {
			truncated = true
			continue // a truncation is never cached
		}
		key := siteCacheKey{seed: seed, idx: res.Index, model: model}
		if prev, ok := s.cache[key]; ok {
			res = prev // two connections raced; keep the first
		} else {
			s.cache[key] = res
		}
		out[missPos[bi]] = res
	}
	s.mu.Unlock()
	if truncated {
		return nil, ctx.Err()
	}
	return out, nil
}

// modelEngine returns the cached engine for a calibration version,
// refreshing its LRU stamp.
func (s *Site) modelEngine(v int) (*floor.Engine, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	me, ok := s.engines[v]
	if !ok {
		return nil, false
	}
	s.engineClock++
	me.use = s.engineClock
	return me.eng, true
}

// installModel decodes a fetched artifact, builds its engine on this
// site's base, verifies the expected fingerprint, and caches it with
// bounded LRU eviction.
func (s *Site) installModel(v int, wantFP uint64, artifact []byte) (*floor.Engine, error) {
	if v <= 0 {
		return nil, fmt.Errorf("netfloor: model delivery for invalid version %d", v)
	}
	art, err := modelreg.DecodeArtifact(artifact)
	if err != nil {
		return nil, err
	}
	if art.Version != 0 && art.Version != v {
		return nil, fmt.Errorf("netfloor: artifact claims version %d, delivery says %d", art.Version, v)
	}
	eng, err := art.Engine(s.Engine)
	if err != nil {
		return nil, err
	}
	if wantFP != 0 && eng.Fingerprint() != wantFP {
		return nil, fmt.Errorf("netfloor: model v%d builds fingerprint %016x, coordinator expects %016x",
			v, eng.Fingerprint(), wantFP)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.engines == nil {
		s.engines = make(map[int]*modelEngine)
	}
	s.engineClock++
	s.engines[v] = &modelEngine{eng: eng, use: s.engineClock}
	bound := s.ModelCacheSize
	if bound <= 0 {
		bound = 4
	}
	for len(s.engines) > bound {
		victim, oldest := 0, ^uint64(0)
		for ver, me := range s.engines {
			if me.use < oldest {
				victim, oldest = ver, me.use
			}
		}
		delete(s.engines, victim)
	}
	return eng, nil
}

// CachedModels lists the versioned engines currently built (testing and
// status introspection).
func (s *Site) CachedModels() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.engines))
	for v := range s.engines {
		out = append(out, v)
	}
	return out
}

// screen produces the device's result, from cache when this site has
// already screened it (a re-delivered assignment after a reconnect or a
// duplicated frame). The cache is shared across connections on purpose:
// the coordinator that reconnects after a partition gets the same answer
// instantly.
func (s *Site) screen(ctx context.Context, eng *floor.Engine, seed int64, idx, model int) floor.DeviceResult {
	key := siteCacheKey{seed: seed, idx: idx, model: model}
	s.mu.Lock()
	if res, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return res
	}
	s.mu.Unlock()

	res := ScreenSupervised(ctx, eng, seed, idx, s.Lot[idx], s.Faults, s.DeviceTimeout)
	if res.Err != "" && ctx.Err() != nil {
		return res // truncated by shutdown: never cache
	}

	s.mu.Lock()
	if s.cache == nil {
		s.cache = make(map[siteCacheKey]floor.DeviceResult)
	}
	if prev, ok := s.cache[key]; ok {
		res = prev // two connections raced; keep the first
	} else {
		s.cache[key] = res
	}
	s.mu.Unlock()
	return res
}

// ScreenSupervised mirrors lotrun's per-device supervision: a deadline
// bounds the device's wall time and a recover() turns any panic escaping
// the screening path into a fallback-binned device instead of a dead site.
// The remote site, the coordinator's local fallback and the lot server's
// local workers all screen through it, so a device bins identically
// wherever it lands.
func ScreenSupervised(ctx context.Context, eng *floor.Engine, lotSeed int64, idx int,
	d *core.Device, faults *floor.FaultModel, timeout time.Duration) (res floor.DeviceResult) {
	res = floor.DeviceResult{Index: idx, CleanD: -1, TruePass: eng.TruePass(d.Specs)}
	defer func() {
		if r := recover(); r != nil {
			res.Bin = floor.BinFallback
			res.Err = fmt.Sprintf("panic: %v", r)
			if res.Insertions == 0 {
				res.Insertions = 1
			}
		}
	}()
	dctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res = eng.ScreenDevice(dctx, idx, d, core.DeviceSeed(lotSeed, idx), faults)
	return res
}

// ScreenBatchSupervised is the batched form of ScreenSupervised: the
// per-device wall budget scales with the batch size, and the engine's
// batched kernel carries the per-device supervision (it never panics; a
// device's panic fallback-bins that device alone). Results are
// batch-aligned and bit-identical to screening each entry serially.
func ScreenBatchSupervised(ctx context.Context, eng *floor.Engine, batch []floor.BatchDevice,
	faults *floor.FaultModel, timeout time.Duration) []floor.DeviceResult {
	dctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, time.Duration(len(batch))*timeout)
		defer cancel()
	}
	return eng.ScreenBatch(dctx, batch, faults)
}
