package netfloor

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/floor"
)

// Site is one remote tester site: it owns a screening engine and the full
// lot (rebuilt locally from the shared engineering seed — the wire never
// carries a device), and serves Assign requests by screening the named
// index. Screening is a deterministic pure function of (lot seed, index),
// so re-screening a re-delivered assignment is harmless; the result cache
// just makes it instant.
type Site struct {
	// Name identifies the site in coordinator reports (default the
	// listener address).
	Name string
	// Engine is the screening engine; its Fingerprint must match the
	// coordinator's.
	Engine *floor.Engine
	// Lot is the full production lot, index-aligned with the coordinator's.
	Lot []*core.Device
	// Faults is the insertion fault model (may be nil); its TotalP must
	// match the coordinator's.
	Faults *floor.FaultModel
	// LotSeed is the lot's device-seed root.
	LotSeed int64
	// HeartbeatInterval is how often the site beacons while screening or
	// idle (default 1s).
	HeartbeatInterval time.Duration
	// IdleTimeout is how long the site waits without hearing anything from
	// the coordinator (not even a heartbeat) before dropping the
	// connection (default 10 × HeartbeatInterval).
	IdleTimeout time.Duration
	// DeviceTimeout bounds one device's screening wall time (0 = none),
	// mirroring lotrun.Options.DeviceTimeout.
	DeviceTimeout time.Duration
	// Logf, when set, receives site-side progress lines.
	Logf func(format string, args ...any)

	mu    sync.Mutex
	cache map[int]floor.DeviceResult
}

func (s *Site) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Site) heartbeat() time.Duration {
	if s.HeartbeatInterval > 0 {
		return s.HeartbeatInterval
	}
	return time.Second
}

func (s *Site) idle() time.Duration {
	if s.IdleTimeout > 0 {
		return s.IdleTimeout
	}
	return 10 * s.heartbeat()
}

// Hello is the identity this site will insist on during the handshake.
func (s *Site) hello() Hello {
	faultP := 0.0
	if s.Faults != nil {
		faultP = s.Faults.TotalP()
	}
	return Hello{
		Version:     ProtocolVersion,
		LotSeed:     s.LotSeed,
		Devices:     len(s.Lot),
		FaultP:      faultP,
		Fingerprint: s.Engine.Fingerprint(),
	}
}

// Validate checks the site is runnable.
func (s *Site) Validate() error {
	if s.Engine == nil {
		return fmt.Errorf("netfloor: site needs an engine")
	}
	if err := s.Engine.Validate(); err != nil {
		return err
	}
	if len(s.Lot) == 0 {
		return fmt.Errorf("netfloor: site has an empty lot")
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Serve accepts coordinator connections on ln until ctx is cancelled,
// handling each on its own goroutine (a coordinator reconnecting after a
// partition gets a fresh connection while the old one times out).
func (s *Site) Serve(ctx context.Context, ln net.Listener) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Name == "" {
		s.Name = ln.Addr().String()
	}
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("netfloor: accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.ServeConn(ctx, conn); err != nil && ctx.Err() == nil {
				s.logf("site %s: connection ended: %v", s.Name, err)
			}
		}()
	}
}

// ServeConn handles one coordinator connection: handshake, then a serial
// Assign → screen → Result loop until Drain, error or idle timeout. A
// heartbeat goroutine beacons throughout so the coordinator can tell a
// long-running screen from a dead site.
func (s *Site) ServeConn(ctx context.Context, conn net.Conn) error {
	if err := s.Validate(); err != nil {
		conn.Close()
		return err
	}
	if s.Name == "" {
		s.Name = conn.LocalAddr().String()
	}
	mc := newMsgConn(conn)
	defer mc.close()

	// Handshake: the coordinator speaks first; refuse any identity
	// mismatch — a differently calibrated engine would bin differently,
	// silently breaking the lot's determinism contract.
	env, err := mc.read(s.idle())
	if err != nil {
		return fmt.Errorf("netfloor: handshake read: %w", err)
	}
	if env.Type != MsgHello || env.Hello == nil {
		return fmt.Errorf("netfloor: expected hello, got %s", env.Type)
	}
	want := s.hello()
	if *env.Hello != want {
		mc.write(&Envelope{Type: MsgError, Site: s.Name,
			Err: fmt.Sprintf("identity mismatch: coordinator %+v, site %+v", *env.Hello, want)}, s.heartbeat())
		return fmt.Errorf("netfloor: identity mismatch: coordinator %+v, site %+v", *env.Hello, want)
	}
	if err := mc.write(&Envelope{Type: MsgHelloAck, Hello: &want, Site: s.Name}, s.idle()); err != nil {
		return err
	}

	// Heartbeat beacon: a separate goroutine so beacons keep flowing while
	// a device is on the (simulated) tester. A failed beacon write closes
	// the conn, which unblocks the read loop below.
	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(s.heartbeat())
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if err := mc.write(&Envelope{Type: MsgHeartbeat, Site: s.Name}, s.heartbeat()); err != nil {
					conn.Close()
					return
				}
			}
		}
	}()
	defer hbWG.Wait()

	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		env, err := mc.read(s.idle())
		if err != nil {
			if errors.Is(err, ErrCorruptFrame) {
				// The stream is desynchronized; only a reset recovers it.
				return err
			}
			return err
		}
		switch env.Type {
		case MsgHeartbeat:
			// Liveness only; the read deadline was already refreshed.
		case MsgAssign:
			if env.Device < 0 || env.Device >= len(s.Lot) {
				mc.write(&Envelope{Type: MsgError, Seq: env.Seq, Device: env.Device, Site: s.Name,
					Err: fmt.Sprintf("device %d outside lot [0,%d)", env.Device, len(s.Lot))}, s.heartbeat())
				continue
			}
			res := s.screen(ctx, env.Device)
			if res.Err != "" && ctx.Err() != nil {
				// The site is shutting down mid-device: the result is a
				// truncation, not an outcome. Never send it — the coordinator
				// reassigns and re-screens from the same per-device seed.
				return ctx.Err()
			}
			if err := mc.write(&Envelope{Type: MsgResult, Seq: env.Seq, Device: env.Device,
				Result: &res, Site: s.Name}, s.idle()); err != nil {
				return err
			}
		case MsgDrain:
			mc.write(&Envelope{Type: MsgDrainAck, Seq: env.Seq, Site: s.Name}, s.heartbeat())
			return nil
		default:
			// Unknown or misdirected message: ignore — a future protocol
			// may add message types old sites can skip.
		}
	}
}

// screen produces the device's result, from cache when this site has
// already screened it (a re-delivered assignment after a reconnect or a
// duplicated frame). The cache is shared across connections on purpose:
// the coordinator that reconnects after a partition gets the same answer
// instantly.
func (s *Site) screen(ctx context.Context, idx int) floor.DeviceResult {
	s.mu.Lock()
	if res, ok := s.cache[idx]; ok {
		s.mu.Unlock()
		return res
	}
	s.mu.Unlock()

	res := s.screenSupervised(ctx, idx)
	if res.Err != "" && ctx.Err() != nil {
		return res // truncated by shutdown: never cache
	}

	s.mu.Lock()
	if s.cache == nil {
		s.cache = make(map[int]floor.DeviceResult)
	}
	if prev, ok := s.cache[idx]; ok {
		res = prev // two connections raced; keep the first
	} else {
		s.cache[idx] = res
	}
	s.mu.Unlock()
	return res
}

func (s *Site) screenSupervised(ctx context.Context, idx int) floor.DeviceResult {
	return superviseScreen(ctx, s.Engine, s.LotSeed, idx, s.Lot[idx], s.Faults, s.DeviceTimeout)
}

// superviseScreen mirrors lotrun's per-device supervision: a deadline
// bounds the device's wall time and a recover() turns any panic escaping
// the screening path into a fallback-binned device instead of a dead site.
// Both the remote site and the coordinator's local fallback screen through
// it, so a device bins identically wherever it lands.
func superviseScreen(ctx context.Context, eng *floor.Engine, lotSeed int64, idx int,
	d *core.Device, faults *floor.FaultModel, timeout time.Duration) (res floor.DeviceResult) {
	res = floor.DeviceResult{Index: idx, CleanD: -1, TruePass: eng.TruePass(d.Specs)}
	defer func() {
		if r := recover(); r != nil {
			res.Bin = floor.BinFallback
			res.Err = fmt.Sprintf("panic: %v", r)
			if res.Insertions == 0 {
				res.Insertions = 1
			}
		}
	}()
	dctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res = eng.ScreenDevice(dctx, idx, d, core.DeviceSeed(lotSeed, idx), faults)
	return res
}
