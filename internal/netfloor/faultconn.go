package netfloor

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/parallel"
)

// FaultProfile parameterizes the fault-injecting transport, in the spirit
// of floor.FaultModel but for the wire instead of the signal path. Faults
// are rolled per Write call; because MsgConn emits exactly one frame per
// Write, each roll decides the fate of one whole protocol message:
//
//   - DropP: the frame is silently discarded (the sender believes it was
//     delivered — the receiver times out);
//   - DupP: the frame is delivered twice (at-least-once delivery made
//     literal — the dedup path must absorb it);
//   - CorruptP: one byte of the frame is flipped (caught by the frame
//     CRC, surfacing as ErrCorruptFrame on the receiver);
//   - DelayP/DelayMax: the frame is held back before delivery (stragglers
//     and head-of-line blocking);
//   - PartitionAfter/PartitionP: the connection goes dark — writes are
//     black-holed and reads block until their deadline — without either
//     side seeing a close. Only heartbeat timeouts get anyone out.
//
// All randomness flows from the seed given to NewFaultConn, so a fixed
// seed reproduces the exact fault sequence on a given connection.
type FaultProfile struct {
	DropP    float64
	DupP     float64
	CorruptP float64
	DelayP   float64
	DelayMax time.Duration
	// PartitionAfter partitions the connection after this many writes
	// (0 = never).
	PartitionAfter int
	// PartitionP is a per-write probability of entering a partition.
	PartitionP float64
}

// Zero reports whether the profile injects nothing.
func (p FaultProfile) Zero() bool {
	return p.DropP == 0 && p.DupP == 0 && p.CorruptP == 0 && p.DelayP == 0 &&
		p.PartitionAfter == 0 && p.PartitionP == 0
}

// FaultConn wraps a net.Conn with seeded, deterministic fault injection.
// It implements net.Conn; all faults are injected on the write side of
// this end, and a partition additionally blinds this end's reads.
//
// Writes are buffered: Write rolls the fault and enqueues the frame(s);
// a single pump goroutine delivers them in order to the inner connection.
// This models a real network's send buffer — the sender never blocks on a
// peer that is momentarily busy — and it is what lets a duplicated or
// delayed frame ride behind the original without interleaving bytes, even
// over a fully synchronous transport like net.Pipe.
type FaultConn struct {
	inner net.Conn
	prof  FaultProfile

	mu          sync.Mutex
	rng         *rand.Rand
	writes      int
	partitioned bool

	dmu          sync.Mutex
	readDeadline time.Time

	queue  chan queuedFrame
	closed chan struct{}
	once   sync.Once
}

// queuedFrame is one buffered write and the delay to apply before
// delivering it.
type queuedFrame struct {
	b     []byte
	delay time.Duration
}

// NewFaultConn wraps inner with the profile, seeding the fault stream.
func NewFaultConn(inner net.Conn, seed int64, prof FaultProfile) *FaultConn {
	c := &FaultConn{
		inner:  inner,
		prof:   prof,
		rng:    rand.New(rand.NewSource(seed)),
		queue:  make(chan queuedFrame, 1024),
		closed: make(chan struct{}),
	}
	go c.pump()
	return c
}

// pump is the single delivery goroutine: frames drain to the inner
// connection in order. A delivery error (including a write deadline
// expiring because the peer stopped reading for good) closes the
// connection — the sender finds out the way it would on a real socket,
// by the connection dying.
func (c *FaultConn) pump() {
	for {
		select {
		case <-c.closed:
			return
		case q := <-c.queue:
			if q.delay > 0 {
				select {
				case <-time.After(q.delay):
				case <-c.closed:
					return
				}
			}
			if _, err := c.inner.Write(q.b); err != nil {
				c.Close()
				return
			}
		}
	}
}

// Partitioned reports whether the connection has gone dark.
func (c *FaultConn) Partitioned() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.partitioned
}

// Write rolls the per-message fault and forwards (or doesn't) to the
// inner connection.
func (c *FaultConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	if c.partitioned {
		c.mu.Unlock()
		return len(b), nil // black hole
	}
	c.writes++
	if (c.prof.PartitionAfter > 0 && c.writes > c.prof.PartitionAfter) ||
		(c.prof.PartitionP > 0 && c.rng.Float64() < c.prof.PartitionP) {
		c.partitioned = true
		c.mu.Unlock()
		return len(b), nil
	}
	drop := c.prof.DropP > 0 && c.rng.Float64() < c.prof.DropP
	dup := c.prof.DupP > 0 && c.rng.Float64() < c.prof.DupP
	corrupt := c.prof.CorruptP > 0 && c.rng.Float64() < c.prof.CorruptP
	var delay time.Duration
	if c.prof.DelayP > 0 && c.rng.Float64() < c.prof.DelayP && c.prof.DelayMax > 0 {
		delay = time.Duration(c.rng.Int63n(int64(c.prof.DelayMax)))
	}
	var flipAt int
	if corrupt && len(b) > 0 {
		flipAt = c.rng.Intn(len(b))
	}
	c.mu.Unlock()

	if drop {
		return len(b), nil
	}
	out := append([]byte(nil), b...) // the caller may reuse b after Write returns
	if corrupt && len(out) > 0 {
		out[flipAt] ^= 0x40
	}
	if err := c.enqueue(queuedFrame{b: out, delay: delay}); err != nil {
		return 0, err
	}
	if dup {
		if err := c.enqueue(queuedFrame{b: out, delay: delay}); err != nil {
			return 0, err
		}
	}
	return len(b), nil
}

func (c *FaultConn) enqueue(q queuedFrame) error {
	select {
	case c.queue <- q:
		return nil
	case <-c.closed:
		return net.ErrClosed
	}
}

// Read passes through until a partition, then blocks until the read
// deadline (or Close) exactly like a dark network path would.
func (c *FaultConn) Read(b []byte) (int, error) {
	for {
		c.mu.Lock()
		part := c.partitioned
		c.mu.Unlock()
		if !part {
			return c.inner.Read(b)
		}
		c.dmu.Lock()
		dl := c.readDeadline
		c.dmu.Unlock()
		if !dl.IsZero() && !time.Now().Before(dl) {
			return 0, timeoutError{}
		}
		// Poll: the deadline may be (re)set while we wait.
		wait := 2 * time.Millisecond
		if !dl.IsZero() {
			if until := time.Until(dl); until < wait {
				wait = until
			}
		}
		if wait <= 0 {
			wait = time.Millisecond
		}
		select {
		case <-time.After(wait):
		case <-c.closed:
			return 0, net.ErrClosed
		}
	}
}

func (c *FaultConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.inner.Close()
}

func (c *FaultConn) LocalAddr() net.Addr  { return c.inner.LocalAddr() }
func (c *FaultConn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

func (c *FaultConn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)
	return c.inner.SetDeadline(t)
}

func (c *FaultConn) SetReadDeadline(t time.Time) error {
	c.dmu.Lock()
	c.readDeadline = t
	c.dmu.Unlock()
	return c.inner.SetReadDeadline(t)
}

func (c *FaultConn) SetWriteDeadline(t time.Time) error {
	return c.inner.SetWriteDeadline(t)
}

// timeoutError satisfies net.Error the way a real read timeout does.
type timeoutError struct{}

func (timeoutError) Error() string   { return "netfloor: i/o timeout (partitioned)" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// Dialer opens a connection to a remote site. The default dials TCP; test
// dialers hand back net.Pipe ends wrapped in FaultConns.
type Dialer func(ctx context.Context, addr string) (net.Conn, error)

// TCPDialer dials addr over TCP with the context's deadline.
func TCPDialer(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// FaultyDialer wraps a dialer so every connection it produces injects the
// profile's faults, each connection with its own deterministic stream:
// connection k of this dialer uses SplitMix(seed, k).
func FaultyDialer(inner Dialer, seed int64, prof FaultProfile) Dialer {
	var mu sync.Mutex
	conns := 0
	return func(ctx context.Context, addr string) (net.Conn, error) {
		c, err := inner(ctx, addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		k := conns
		conns++
		mu.Unlock()
		return NewFaultConn(c, parallel.SubSeed(seed, k), prof), nil
	}
}
