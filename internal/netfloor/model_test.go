package netfloor

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/lotrun"
	"repro/internal/modelreg"
)

// readSkippingHeartbeats reads frames until one that is not a heartbeat
// arrives; the manual-protocol tests below drive a real Site over a pipe,
// so its liveness beacons interleave with the replies under test.
func readSkippingHeartbeats(t *testing.T, mc *MsgConn) *Envelope {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		env, err := mc.Read(time.Second)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if env.Type == MsgHeartbeat {
			continue
		}
		return env
	}
	t.Fatal("no non-heartbeat frame within deadline")
	return nil
}

// TestHandshakeModelMismatchTyped: a site whose engine hashes to a
// different fingerprint — same lot, same board, different calibration —
// must be refused with a rejection the coordinator can detect as
// ErrModelMismatch via errors.Is; a site describing a different floor
// entirely (wrong lot seed) must NOT read as a model mismatch.
func TestHandshakeModelMismatchTyped(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 8)
	const seed = 13

	fm := newFarm(t, f, lot, nil, seed, 1)
	// Recalibrate the site differently: policy is part of the screening
	// semantics, so the fingerprint — and only the fingerprint — moves.
	eng := fm.sites["site0"].Engine
	eng.Policy.MaxRetests += 2

	opt := coordOpts(fm, fm.dialer(FaultProfile{}, 0))
	opt.defaults()
	c := &Coordinator{Engine: f.engine(), Opt: opt}
	hello := Hello{
		Version:     ProtocolVersion,
		LotSeed:     seed,
		Devices:     len(lot),
		Fingerprint: f.engine().Fingerprint(),
	}
	_, _, err := c.connect(context.Background(), &opt, hello, "site0")
	if !errors.Is(err, ErrModelMismatch) {
		t.Fatalf("fingerprint-only mismatch: err=%v, want ErrModelMismatch", err)
	}

	// Wrong lot seed: a misconfiguration, not an upgrade problem.
	badHello := hello
	badHello.LotSeed = seed + 1
	badHello.Fingerprint = fm.sites["site0"].Engine.Fingerprint()
	_, _, err = c.connect(context.Background(), &opt, badHello, "site0")
	if err == nil || errors.Is(err, ErrModelMismatch) {
		t.Fatalf("identity mismatch: err=%v, must be refused but NOT as ErrModelMismatch", err)
	}
}

// TestResumeRejectsVersionedJournalTyped: the single-lot coordinator runs
// the base model only; a journal pinned to a registry version must be
// refused with the typed lotrun.ErrModelMismatch.
func TestResumeRejectsVersionedJournalTyped(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 6)
	const seed = 29
	path := filepath.Join(t.TempDir(), "versioned.journal")

	jr, err := lotrun.CreateJournal(path, lotrun.JournalHeader{
		Type: "header", Version: lotrun.JournalVersion,
		LotSeed: seed, Devices: len(lot),
		Fingerprint:  f.engine().Fingerprint(),
		ModelVersion: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	jr.Close()

	fm := newFarm(t, f, lot, nil, seed, 1)
	opt := coordOpts(fm, fm.dialer(FaultProfile{}, 0))
	opt.JournalPath = path
	c := &Coordinator{Engine: f.engine(), Opt: opt}
	if _, err := c.Resume(context.Background(), seed, lot, nil); !errors.Is(err, lotrun.ErrModelMismatch) {
		t.Fatalf("resume of a version-pinned journal: err=%v, want lotrun.ErrModelMismatch", err)
	}
}

// dialManual opens one connection to a farm site and completes a
// multi-lot handshake, returning the client conn.
func dialManual(t *testing.T, fm *farm, f *fixture, lot int) *MsgConn {
	t.Helper()
	d := fm.dialer(FaultProfile{}, 0)
	conn, err := d(context.Background(), "site0")
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMsgConn(conn)
	t.Cleanup(func() { mc.Close() })
	hello := fm.sites["site0"].hello()
	hello.MultiLot = true
	hello.LotSeed = 0
	if err := mc.Write(&Envelope{Type: MsgHello, Hello: &hello}, time.Second); err != nil {
		t.Fatal(err)
	}
	ack := readSkippingHeartbeats(t, mc)
	if ack.Type != MsgHelloAck {
		t.Fatalf("handshake: got %s (%s)", ack.Type, ack.Err)
	}
	return mc
}

// TestSiteVersionedAssignFetchesModel: an Assign naming an unknown model
// version makes the site fetch the artifact once, rebuild the engine,
// serve the queued assignment under it, and serve later assignments for
// the same version from cache.
func TestSiteVersionedAssignFetchesModel(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 8)
	const seed = 7

	fm := newFarm(t, f, lot, nil, seed, 1)
	mc := dialManual(t, fm, f, len(lot))

	art, err := modelreg.NewArtifact(f.engine(), f.cal, f.gate, "wire test")
	if err != nil {
		t.Fatal(err)
	}
	art.Version = 2
	raw, err := modelreg.EncodeArtifact(art)
	if err != nil {
		t.Fatal(err)
	}

	if err := mc.Write(&Envelope{Type: MsgAssign, Seq: 1, Device: 3, Seed: seed, Model: 2}, time.Second); err != nil {
		t.Fatal(err)
	}
	env := readSkippingHeartbeats(t, mc)
	if env.Type != MsgModelReq || env.Model != 2 {
		t.Fatalf("expected model_req for v2, got %s (model %d)", env.Type, env.Model)
	}
	if err := mc.Write(&Envelope{Type: MsgModel, Model: 2, ModelFP: art.Fingerprint, Artifact: raw}, time.Second); err != nil {
		t.Fatal(err)
	}
	env = readSkippingHeartbeats(t, mc)
	if env.Type != MsgResult || env.Device != 3 || env.Model != 2 {
		t.Fatalf("expected result for device 3 under v2, got %s device %d model %d", env.Type, env.Device, env.Model)
	}

	artEng, err := art.Engine(f.engine())
	if err != nil {
		t.Fatal(err)
	}
	want := ScreenSupervised(context.Background(), artEng, seed, 3, lot[3], nil, 0)
	if !reflect.DeepEqual(*env.Result, want) {
		t.Fatalf("wire result diverges from local screening under the artifact engine:\n%+v\nvs\n%+v", *env.Result, want)
	}

	// Second assignment under the same version: served from cache, no
	// second fetch.
	if err := mc.Write(&Envelope{Type: MsgAssign, Seq: 2, Device: 4, Seed: seed, Model: 2}, time.Second); err != nil {
		t.Fatal(err)
	}
	env = readSkippingHeartbeats(t, mc)
	if env.Type != MsgResult || env.Device != 4 {
		t.Fatalf("cached-version assign: got %s device %d", env.Type, env.Device)
	}
	if st := fm.sites["site0"].Stats(); st.ModelFetches != 1 || st.ModelFails != 0 {
		t.Fatalf("fetches=%d fails=%d, want exactly one fetch and no failures", st.ModelFetches, st.ModelFails)
	}
}

// TestSiteRejectsBadModelArtifact: a corrupt or wrong artifact delivery
// fails the queued assignments with a typed model_mismatch error — and
// the connection survives to serve base-model work.
func TestSiteRejectsBadModelArtifact(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 8)
	const seed = 17

	fm := newFarm(t, f, lot, nil, seed, 1)
	mc := dialManual(t, fm, f, len(lot))

	if err := mc.Write(&Envelope{Type: MsgAssign, Seq: 5, Device: 2, Seed: seed, Model: 9}, time.Second); err != nil {
		t.Fatal(err)
	}
	env := readSkippingHeartbeats(t, mc)
	if env.Type != MsgModelReq {
		t.Fatalf("expected model_req, got %s", env.Type)
	}
	if err := mc.Write(&Envelope{Type: MsgModel, Model: 9, Artifact: []byte(`{"not":"an artifact"}`)}, time.Second); err != nil {
		t.Fatal(err)
	}
	env = readSkippingHeartbeats(t, mc)
	if env.Type != MsgError || env.Code != CodeModelMismatch || env.Seq != 5 {
		t.Fatalf("expected coded model_mismatch error for seq 5, got %s code %q seq %d", env.Type, env.Code, env.Seq)
	}

	// Connection still serves the base model.
	if err := mc.Write(&Envelope{Type: MsgAssign, Seq: 6, Device: 2, Seed: seed}, time.Second); err != nil {
		t.Fatal(err)
	}
	env = readSkippingHeartbeats(t, mc)
	if env.Type != MsgResult || env.Device != 2 {
		t.Fatalf("base-model assign after rejection: got %s device %d", env.Type, env.Device)
	}
	if st := fm.sites["site0"].Stats(); st.ModelFails != 1 {
		t.Fatalf("ModelFails=%d, want 1", st.ModelFails)
	}
}

// TestSiteModelCacheEviction: the per-site engine cache is bounded; the
// least-recently-used version is evicted and transparently re-fetched.
func TestSiteModelCacheEviction(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 8)
	const seed = 19

	fm := newFarm(t, f, lot, nil, seed, 1)
	fm.sites["site0"].ModelCacheSize = 2
	mc := dialManual(t, fm, f, len(lot))

	art, err := modelreg.NewArtifact(f.engine(), f.cal, f.gate, "evict test")
	if err != nil {
		t.Fatal(err)
	}
	assignUnder := func(seq uint64, version, device int) {
		t.Helper()
		if err := mc.Write(&Envelope{Type: MsgAssign, Seq: seq, Device: device, Seed: seed, Model: version}, time.Second); err != nil {
			t.Fatal(err)
		}
		env := readSkippingHeartbeats(t, mc)
		if env.Type == MsgModelReq {
			a := *art
			a.Version = version
			raw, err := modelreg.EncodeArtifact(&a)
			if err != nil {
				t.Fatal(err)
			}
			if err := mc.Write(&Envelope{Type: MsgModel, Model: version, ModelFP: a.Fingerprint, Artifact: raw}, time.Second); err != nil {
				t.Fatal(err)
			}
			env = readSkippingHeartbeats(t, mc)
		}
		if env.Type != MsgResult || env.Device != device || env.Model != version {
			t.Fatalf("assign under v%d: got %s device %d model %d", version, env.Type, env.Device, env.Model)
		}
	}

	assignUnder(1, 1, 0)
	assignUnder(2, 2, 1)
	assignUnder(3, 3, 2) // evicts v1 (LRU)
	if got := fm.sites["site0"].CachedModels(); len(got) != 2 {
		t.Fatalf("cache holds %v, want 2 versions", got)
	}
	assignUnder(4, 1, 3) // v1 must be re-fetched
	if st := fm.sites["site0"].Stats(); st.ModelFetches != 4 {
		t.Fatalf("ModelFetches=%d, want 4 (v1, v2, v3, v1-again)", st.ModelFetches)
	}
}
