package netfloor

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/floor"
	"repro/internal/lna"
)

// TestFrameRoundTrip: every envelope shape survives the length+CRC+JSON
// framing over a real pipe, including the float64 spec predictions (Go
// JSON round-trips float64 bit-exactly).
func TestFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ma, mb := NewMsgConn(a), NewMsgConn(b)

	res := &floor.DeviceResult{
		Index: 7, Bin: floor.BinPass, Insertions: 2, CleanD: 0.17,
		Faults:   []floor.FaultKind{floor.FaultBurstNoise, floor.FaultNone},
		Verdicts: []floor.Verdict{floor.VerdictInvalid, floor.VerdictClean},
		Pred:     lna.Specs{GainDB: 12.062500000000002, NFDB: 3.3, IIP3DBm: -8.93},
		TruePass: true,
	}
	msgs := []*Envelope{
		{Type: MsgHello, Hello: &Hello{Version: 1, LotSeed: 42, Devices: 10, FaultP: 0.15, Fingerprint: 0xdeadbeef}},
		{Type: MsgAssign, Seq: 3, Device: 7},
		{Type: MsgResult, Seq: 3, Device: 7, Result: res, Site: "pipe"},
		{Type: MsgHeartbeat},
		{Type: MsgError, Err: "nope"},
	}
	go func() {
		for _, env := range msgs {
			ma.Write(env, time.Second)
		}
	}()
	for _, want := range msgs {
		got, err := mb.Read(time.Second)
		if err != nil {
			t.Fatalf("read %s: %v", want.Type, err)
		}
		if got.Type != want.Type || got.Seq != want.Seq || got.Device != want.Device || got.Err != want.Err {
			t.Fatalf("envelope mangled: %+v vs %+v", got, want)
		}
		if want.Hello != nil && *got.Hello != *want.Hello {
			t.Fatalf("hello mangled: %+v vs %+v", got.Hello, want.Hello)
		}
		if want.Result != nil {
			if got.Result.Pred != want.Result.Pred || got.Result.CleanD != want.Result.CleanD {
				t.Fatalf("result floats mangled over the wire: %+v vs %+v", got.Result, want.Result)
			}
		}
	}
}

// TestFrameCorruptionDetected: a flipped payload byte surfaces as
// ErrCorruptFrame; a corrupted length prefix is bounded by maxFrame
// instead of allocating whatever the flipped bits say.
func TestFrameCorruptionDetected(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	// Capture one valid frame by writing through a MsgConn to a tap.
	var frame []byte
	done := make(chan struct{})
	go func() {
		frame, _ = io.ReadAll(a)
		close(done)
	}()
	mb := NewMsgConn(b)
	if err := mb.Write(&Envelope{Type: MsgAssign, Seq: 9, Device: 4}, time.Second); err != nil {
		t.Fatal(err)
	}
	b.Close()
	<-done

	send := func(raw []byte) (*Envelope, error) {
		c, d := net.Pipe()
		defer c.Close()
		defer d.Close()
		go func() {
			c.Write(raw)
			c.Close()
		}()
		return NewMsgConn(d).Read(time.Second)
	}

	// The untampered frame parses.
	if env, err := send(frame); err != nil || env.Device != 4 {
		t.Fatalf("clean frame: %+v, %v", env, err)
	}
	// A flipped payload byte fails the CRC.
	tampered := append([]byte(nil), frame...)
	tampered[10] ^= 0x40
	if _, err := send(tampered); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("flipped payload byte: err %v, want ErrCorruptFrame", err)
	}
	// A flipped high bit in the length prefix is refused by maxFrame.
	biglen := append([]byte(nil), frame...)
	biglen[0] |= 0x80
	if _, err := send(biglen); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("corrupt length prefix: err %v, want maxFrame refusal", err)
	}
}

// TestFaultConnDeterministicDrops: the same seed reproduces the same
// drop/duplicate pattern, and a different seed produces a different one.
func TestFaultConnDeterministicDrops(t *testing.T) {
	prof := FaultProfile{DropP: 0.3, DupP: 0.2}
	pattern := func(seed int64) []int {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		fc := NewFaultConn(a, seed, prof)
		counts := make(chan []int, 1)
		go func() {
			var got []int
			buf := make([]byte, 1)
			b.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			for {
				if _, err := b.Read(buf); err != nil {
					break
				}
				got = append(got, int(buf[0]))
			}
			counts <- got
		}()
		for i := 0; i < 40; i++ {
			fc.Write([]byte{byte(i)})
		}
		return <-counts
	}
	p1, p2 := pattern(5), pattern(5)
	if len(p1) == 0 || len(p1) == 40 {
		t.Fatalf("profile injected nothing observable: %d of 40 delivered", len(p1))
	}
	if !equalInts(p1, p2) {
		t.Fatalf("same seed, different fault pattern:\n%v\nvs\n%v", p1, p2)
	}
	if p3 := pattern(6); equalInts(p1, p3) {
		t.Fatal("different seeds reproduced the identical 40-message fault pattern")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFaultConnPartition: after PartitionAfter writes the connection goes
// dark — writes are swallowed without error and reads time out at their
// deadline with a net.Error instead of returning data or EOF.
func TestFaultConnPartition(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := NewFaultConn(a, 1, FaultProfile{PartitionAfter: 2})

	got := make(chan byte, 8)
	go func() {
		buf := make([]byte, 1)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
			got <- buf[0]
		}
	}()
	for i := byte(1); i <= 4; i++ {
		if _, err := fc.Write([]byte{i}); err != nil {
			t.Fatalf("write %d into a partition must not error: %v", i, err)
		}
	}
	if x, y := <-got, <-got; x != 1 || y != 2 {
		t.Fatalf("pre-partition writes mangled: %d, %d", x, y)
	}
	select {
	case x := <-got:
		t.Fatalf("byte %d escaped the partition", x)
	case <-time.After(30 * time.Millisecond):
	}
	if !fc.Partitioned() {
		t.Fatal("Partitioned() false after PartitionAfter writes")
	}

	fc.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	start := time.Now()
	_, err := fc.Read(make([]byte, 1))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("partitioned read returned %v, want a net.Error timeout", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("partitioned read returned before its deadline")
	}
}
