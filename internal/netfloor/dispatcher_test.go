package netfloor

import "testing"

// Dispatcher edge cases: the hedging/dedup state machine under duplicate
// hedged results, late losers, and requeue ordering — the exactly-once
// core both the single-lot coordinator and the multi-lot server lean on.

func TestDispatcherFreshThenHedge(t *testing.T) {
	d := NewDispatcher([]int{0, 1, 2}, 3)
	// Fresh queue drains in FIFO order, unhedged.
	for want := 0; want < 3; want++ {
		idx, hedged, ok := d.Next(true)
		if !ok || hedged || idx != want {
			t.Fatalf("Next #%d = (%d, %v, %v), want (%d, false, true)", want, idx, hedged, ok, want)
		}
	}
	// Queue dry: hedging picks the lowest single-holder index.
	idx, hedged, ok := d.Next(true)
	if !ok || !hedged || idx != 0 {
		t.Fatalf("hedge = (%d, %v, %v), want (0, true, true)", idx, hedged, ok)
	}
	// With hedge disabled there is nothing to hand out.
	if _, _, ok := d.Next(false); ok {
		t.Fatal("Next(false) handed out work from an empty queue")
	}
}

func TestDispatcherHedgeSkipsDoubleHeld(t *testing.T) {
	d := NewDispatcher([]int{0, 1}, 2)
	d.Next(true) // 0 in flight
	d.Next(true) // 1 in flight
	if idx, _, ok := d.Next(true); !ok || idx != 0 {
		t.Fatalf("first hedge = (%d, %v), want (0, true)", idx, ok)
	}
	// Index 0 now has two holders: the next hedge must pick 1, and once
	// every index is double-held there is nothing left to hedge.
	if idx, _, ok := d.Next(true); !ok || idx != 1 {
		t.Fatalf("second hedge = (%d, %v), want (1, true)", idx, ok)
	}
	if _, _, ok := d.Next(true); ok {
		t.Fatal("hedged an index that already has two holders")
	}
}

func TestDispatcherDuplicateHedgedResults(t *testing.T) {
	d := NewDispatcher([]int{0}, 1)
	d.Next(true) // original holder
	d.Next(true) // hedge holder
	// Both sites answer: only the first commit wins.
	if !d.Complete(0) {
		t.Fatal("first result did not commit")
	}
	if d.Complete(0) {
		t.Fatal("duplicate hedged result committed twice")
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", d.Remaining())
	}
	// Late losers release without requeuing the finished index.
	if d.Release(0) {
		t.Fatal("winner's release requeued a completed index")
	}
	if d.Release(0) {
		t.Fatal("late loser's release requeued a completed index")
	}
	if _, _, ok := d.Next(true); ok {
		t.Fatal("completed index was handed out again")
	}
}

func TestDispatcherLateLoserAfterRequeue(t *testing.T) {
	// A site dies holding index 0; the release requeues it at the FRONT
	// (it has waited longest), ahead of untouched work.
	d := NewDispatcher([]int{0, 1}, 2)
	d.Next(true) // 0 to the doomed site
	if !d.Release(0) {
		t.Fatal("sole holder's release did not requeue")
	}
	idx, hedged, ok := d.Next(true)
	if !ok || hedged || idx != 0 {
		t.Fatalf("after requeue Next = (%d, %v, %v), want (0, false, true)", idx, hedged, ok)
	}
	// The dead site's result arrives anyway (the transport delivered it
	// late): it commits — screening is pure, so it equals the retry's.
	if !d.Complete(0) {
		t.Fatal("late result did not commit")
	}
	// The retry holder finishes and its duplicate is absorbed.
	if d.Complete(0) {
		t.Fatal("retry result committed twice")
	}
	d.Release(0)
	if idx, _, ok := d.Next(true); !ok || idx != 1 {
		t.Fatalf("Next = (%d, %v), want (1, true)", idx, ok)
	}
}

func TestDispatcherRequeueDoesNotResurrectDone(t *testing.T) {
	// An index completed while queued (a stray duplicate frame landed
	// before its requeue was handed out) must be skipped by Next.
	d := NewDispatcher([]int{0, 1}, 2)
	d.Next(true)  // 0 in flight
	d.Release(0)  // requeued at front
	d.Complete(0) // stray result commits it while queued
	idx, _, ok := d.Next(true)
	if !ok || idx != 1 {
		t.Fatalf("Next = (%d, %v), want (1, true) — done index must be skipped", idx, ok)
	}
}

func TestDispatcherReplayedDevicesNeverAssigned(t *testing.T) {
	// Journal replay: only pending indices are handed out; the rest are
	// born complete.
	d := NewDispatcher([]int{1, 3}, 4)
	if d.Remaining() != 2 {
		t.Fatalf("Remaining = %d, want 2", d.Remaining())
	}
	seen := map[int]bool{}
	for {
		idx, _, ok := d.Next(false)
		if !ok {
			break
		}
		seen[idx] = true
	}
	if !seen[1] || !seen[3] || len(seen) != 2 {
		t.Fatalf("assigned %v, want exactly {1, 3}", seen)
	}
	if d.Complete(0) || d.Complete(2) {
		t.Fatal("replayed device committed as if screened")
	}
}
