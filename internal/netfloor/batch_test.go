package netfloor

import (
	"context"
	"testing"

	"repro/internal/floor"
)

// TestMixedBatchBitIdentity runs the distributed floor with heterogeneous
// site capabilities: site0 advertises batched assignments (MaxBatch 16),
// site1 stays a legacy single-device site (MaxBatch 0). The coordinator
// asks for Batch 16 and must negotiate down per connection, so the same
// lot flows through both the batched kernel and the serial path while the
// exactly-once collector dedups across them. Bins must match the serial
// engine bit for bit, clean transport and faulted alike.
func TestMixedBatchBitIdentity(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 48)
	faults := floor.DefaultFaultModel(0.15)
	const seed = 99

	serial, err := f.engine().RunLot(seed, lot, faults)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("clean-transport", func(t *testing.T) {
		fm := newFarm(t, f, lot, faults, seed, 2)
		fm.sites["site0"].MaxBatch = 16
		opt := coordOpts(fm, fm.dialer(FaultProfile{}, 0))
		opt.Batch = 16
		c := &Coordinator{Engine: f.engine(), Opt: opt}
		rep, err := c.Run(context.Background(), seed, lot, faults)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, "serial vs mixed-K distributed", serial, rep.Lot)
		// Batched frames carry many devices per assignment, so the frame
		// count must land well under one-per-device even though site1
		// screens strictly one at a time.
		if rep.Net.Assigns >= len(lot) {
			t.Fatalf("mixed-K floor sent %d assignments for %d devices; batching never engaged", rep.Net.Assigns, len(lot))
		}
		// Hedges are the only legitimate duplicate source on a clean
		// transport: site1 may re-screen a straggler still inside site0's
		// in-flight batch, and the collector drops the loser.
		if rep.Net.DupResults > rep.Net.Hedges {
			t.Fatalf("clean transport deduped %d results with only %d hedges; batched delivery is duplicating",
				rep.Net.DupResults, rep.Net.Hedges)
		}
	})

	t.Run("faulty-transport", func(t *testing.T) {
		fm := newFarm(t, f, lot, faults, seed, 2)
		fm.sites["site0"].MaxBatch = 16
		prof := FaultProfile{DropP: 0.03, DupP: 0.05, PartitionAfter: 150}
		opt := coordOpts(fm, fm.dialer(prof, 1311))
		opt.Batch = 16
		c := &Coordinator{Engine: f.engine(), Opt: opt}
		rep, err := c.Run(context.Background(), seed, lot, faults)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, "serial vs mixed-K distributed under faults", serial, rep.Lot)
	})

	// Both sites batching: the pure-batched floor must agree too.
	t.Run("all-batched", func(t *testing.T) {
		fm := newFarm(t, f, lot, faults, seed, 2)
		fm.sites["site0"].MaxBatch = 16
		fm.sites["site1"].MaxBatch = 4
		opt := coordOpts(fm, fm.dialer(FaultProfile{}, 2))
		opt.Batch = 16
		c := &Coordinator{Engine: f.engine(), Opt: opt}
		rep, err := c.Run(context.Background(), seed, lot, faults)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, "serial vs all-batched distributed", serial, rep.Lot)
	})
}
