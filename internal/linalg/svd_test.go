package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func reconstructSVD(d *SVD) *Matrix {
	p := len(d.S)
	m := d.U.Rows
	n := d.V.Rows
	out := NewMatrix(m, n)
	for k := 0; k < p; k++ {
		for i := 0; i < m; i++ {
			uik := d.U.At(i, k) * d.S[k]
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += uik * d.V.At(j, k)
			}
		}
	}
	return out
}

func TestSVDKnownDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, -2}})
	d := ComputeSVD(a)
	if !almostEq(d.S[0], 3, 1e-12) || !almostEq(d.S[1], 2, 1e-12) {
		t.Fatalf("singular values %v, want [3 2]", d.S)
	}
	matricesClose(t, reconstructSVD(d), a, 1e-12, "reconstruct")
}

func TestSVDWideMatrix(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}})
	d := ComputeSVD(a)
	matricesClose(t, reconstructSVD(d), a, 1e-10, "wide reconstruct")
	if len(d.S) != 2 {
		t.Fatalf("thin SVD of 2x4 should have 2 singular values, got %d", len(d.S))
	}
}

func TestSVDOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 10, 4)
	d := ComputeSVD(a)
	utu := d.U.T().Mul(d.U)
	matricesClose(t, utu, Identity(4), 1e-10, "U^T U")
	vtv := d.V.T().Mul(d.V)
	matricesClose(t, vtv, Identity(4), 1e-10, "V^T V")
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix.
	a := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	d := ComputeSVD(a)
	if r := d.Rank(0); r != 1 {
		t.Fatalf("rank = %d, want 1", r)
	}
	if !math.IsInf(d.Cond(), 1) && d.Cond() < 1e12 {
		t.Fatalf("condition number should be huge, got %g", d.Cond())
	}
}

func TestPseudoInverseMoorePenrose(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomMatrix(rng, 6, 3)
	ai := PseudoInverse(a)
	// A A+ A = A
	matricesClose(t, a.Mul(ai).Mul(a), a, 1e-9, "A A+ A")
	// A+ A A+ = A+
	matricesClose(t, ai.Mul(a).Mul(ai), ai, 1e-9, "A+ A A+")
	// (A A+)^T = A A+
	p := a.Mul(ai)
	matricesClose(t, p.T(), p, 1e-9, "symmetry of A A+")
	q := ai.Mul(a)
	matricesClose(t, q.T(), q, 1e-9, "symmetry of A+ A")
}

func TestPseudoInverseRankDeficient(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	ai := PseudoInverse(a)
	// Moore-Penrose conditions still hold on rank-deficient input.
	matricesClose(t, a.Mul(ai).Mul(a), a, 1e-10, "A A+ A rank-deficient")
}

func TestSolveLeastSquaresMinNorm(t *testing.T) {
	// Underdetermined: x minimizing ||x|| with x1 + x2 = 2 is [1, 1].
	a := FromRows([][]float64{{1, 1}})
	x := SolveLeastSquares(a, []float64{2})
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 1, 1e-12) {
		t.Fatalf("min-norm solution %v, want [1 1]", x)
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	a := NewMatrix(3, 2)
	d := ComputeSVD(a)
	if d.S[0] != 0 || d.S[1] != 0 {
		t.Fatalf("zero matrix should have zero singular values: %v", d.S)
	}
	if d.Rank(0) != 0 {
		t.Fatal("zero matrix rank should be 0")
	}
}

// Property: SVD reconstructs random matrices and singular values are sorted
// non-increasing and non-negative.
func TestPropertySVDReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(10), 1+r.Intn(10)
		a := randomMatrix(r, m, n)
		d := ComputeSVD(a)
		for i := 1; i < len(d.S); i++ {
			if d.S[i] > d.S[i-1]+1e-12 || d.S[i] < 0 {
				return false
			}
		}
		rec := reconstructSVD(d)
		for i := range rec.Data {
			if !almostEq(rec.Data[i], a.Data[i], 1e-9*(1+a.MaxAbs())) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Frobenius norm equals sqrt(sum of squared singular values).
func TestPropertySVDFrobenius(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 2+r.Intn(6), 2+r.Intn(6)
		a := randomMatrix(r, m, n)
		d := ComputeSVD(a)
		s := 0.0
		for _, sv := range d.S {
			s += sv * sv
		}
		return almostEq(math.Sqrt(s), a.FrobNorm(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPCARecoverDominantDirection(t *testing.T) {
	// Data spread along direction (1, 1)/sqrt(2) with small noise.
	rng := rand.New(rand.NewSource(4))
	n := 200
	data := NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		tv := rng.NormFloat64() * 10
		data.Set(i, 0, tv+rng.NormFloat64()*0.01+5)
		data.Set(i, 1, tv+rng.NormFloat64()*0.01-3)
	}
	p := ComputePCA(data, 1)
	dir := []float64{p.Components.At(0, 0), p.Components.At(1, 0)}
	if !almostEq(math.Abs(dir[0]), math.Sqrt(0.5), 1e-2) || !almostEq(math.Abs(dir[1]), math.Sqrt(0.5), 1e-2) {
		t.Fatalf("principal direction %v, want +-[0.707 0.707]", dir)
	}
	if !almostEq(p.Mean[0], 5, 1.5) || !almostEq(p.Mean[1], -3, 1.5) {
		t.Fatalf("means %v", p.Mean)
	}
}

func TestPCATransformRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randomMatrix(rng, 30, 5)
	p := ComputePCA(data, 5)
	// With full components, squared norms of centered data are preserved.
	for i := 0; i < data.Rows; i++ {
		x := data.Row(i)
		z := p.Transform(x)
		cx := make([]float64, 5)
		for j := range cx {
			cx[j] = x[j] - p.Mean[j]
		}
		if !almostEq(Norm2(z), Norm2(cx), 1e-9) {
			t.Fatalf("norm not preserved at row %d: %g vs %g", i, Norm2(z), Norm2(cx))
		}
	}
}
