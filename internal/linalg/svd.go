package linalg

import (
	"fmt"
	"math"
	"sort"
)

// SVD holds the thin singular value decomposition A = U * diag(S) * V^T,
// with U of size m x p, S of length p, V of size n x p, p = min(m, n).
// Singular values are sorted in decreasing order.
type SVD struct {
	U *Matrix
	S []float64
	V *Matrix
}

// ComputeSVD computes the thin SVD of a using one-sided Jacobi rotations.
// One-sided Jacobi is slower than Golub-Kahan bidiagonalization but is
// simple, numerically robust, and computes small singular values to high
// relative accuracy — which matters here because the pseudoinverse of the
// signature sensitivity matrix A_s (Eq. 9) drives the whole optimization.
func ComputeSVD(a *Matrix) *SVD {
	m, n := a.Rows, a.Cols
	// Work on the tall orientation; transpose back at the end.
	if m < n {
		s := ComputeSVD(a.T())
		return &SVD{U: s.V, S: s.S, V: s.U}
	}
	// w starts as a copy of A; Jacobi rotations orthogonalize its columns.
	// At convergence w = U*diag(S) and the accumulated rotations form V.
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 60
	eps := 2.2204460492503131e-16
	tol := 10 * float64(m) * eps

	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Column inner products.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					wp := w.Data[i*n+p]
					wq := w.Data[i*n+q]
					app += wp * wp
					aqq += wq * wq
					apq += wp * wq
				}
				if math.Abs(apq) <= tol*math.Sqrt(app*aqq) || apq == 0 {
					continue
				}
				rotated = true
				// Jacobi rotation that zeroes the (p,q) inner product.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					wp := w.Data[i*n+p]
					wq := w.Data[i*n+q]
					w.Data[i*n+p] = c*wp - s*wq
					w.Data[i*n+q] = s*wp + c*wq
				}
				for i := 0; i < n; i++ {
					vp := v.Data[i*n+p]
					vq := v.Data[i*n+q]
					v.Data[i*n+p] = c*vp - s*vq
					v.Data[i*n+q] = s*vp + c*vq
				}
			}
		}
		if !rotated {
			break
		}
	}

	// Extract singular values (column norms) and normalize U columns.
	s := make([]float64, n)
	u := NewMatrix(m, n)
	for j := 0; j < n; j++ {
		col := make([]float64, m)
		for i := 0; i < m; i++ {
			col[i] = w.Data[i*n+j]
		}
		sj := Norm2(col)
		s[j] = sj
		if sj > 0 {
			for i := 0; i < m; i++ {
				u.Data[i*n+j] = col[i] / sj
			}
		}
	}

	// Sort by decreasing singular value.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return s[idx[i]] > s[idx[j]] })
	su := NewMatrix(m, n)
	sv := NewMatrix(n, n)
	ss := make([]float64, n)
	for k, j := range idx {
		ss[k] = s[j]
		for i := 0; i < m; i++ {
			su.Data[i*n+k] = u.Data[i*n+j]
		}
		for i := 0; i < n; i++ {
			sv.Data[i*n+k] = v.Data[i*n+j]
		}
	}
	return &SVD{U: su, S: ss, V: sv}
}

// Rank returns the numerical rank using tolerance tol*max(S); if tol <= 0 a
// default of 1e-12 is used.
func (d *SVD) Rank(tol float64) int {
	if tol <= 0 {
		tol = 1e-12
	}
	if len(d.S) == 0 {
		return 0
	}
	thresh := tol * d.S[0]
	r := 0
	for _, s := range d.S {
		if s > thresh {
			r++
		}
	}
	return r
}

// Cond returns the 2-norm condition number sigma_max / sigma_min.
func (d *SVD) Cond() float64 {
	if len(d.S) == 0 {
		return 0
	}
	smin := d.S[len(d.S)-1]
	if smin == 0 {
		return math.Inf(1)
	}
	return d.S[0] / smin
}

// PseudoInverse returns the Moore-Penrose pseudoinverse A^+ = V S^+ U^T
// (the paper's Eq. 9 machinery). Singular values below tol*max(S) are
// treated as zero; tol <= 0 selects the default 1e-12.
func (d *SVD) PseudoInverse(tol float64) *Matrix {
	if tol <= 0 {
		tol = 1e-12
	}
	p := len(d.S)
	m := d.U.Rows
	n := d.V.Rows
	out := NewMatrix(n, m)
	if p == 0 {
		return out
	}
	thresh := tol * d.S[0]
	// out = sum_k (1/s_k) v_k u_k^T over retained singular triplets.
	for k := 0; k < p; k++ {
		if d.S[k] <= thresh {
			continue
		}
		inv := 1 / d.S[k]
		for i := 0; i < n; i++ {
			vik := d.V.Data[i*d.V.Cols+k] * inv
			if vik == 0 {
				continue
			}
			for j := 0; j < m; j++ {
				out.Data[i*m+j] += vik * d.U.Data[j*d.U.Cols+k]
			}
		}
	}
	return out
}

// PseudoInverse is a convenience wrapper: SVD-based pseudoinverse of a with
// the default rank tolerance.
func PseudoInverse(a *Matrix) *Matrix {
	return ComputeSVD(a).PseudoInverse(0)
}

// SolveLeastSquares returns the minimum-norm x minimizing ||A x - b||_2.
func SolveLeastSquares(a *Matrix, b []float64) []float64 {
	if a.Rows != len(b) {
		panic(fmt.Sprintf("linalg: SolveLeastSquares shape mismatch %dx%d vs b %d", a.Rows, a.Cols, len(b)))
	}
	return PseudoInverse(a).MulVec(b)
}
