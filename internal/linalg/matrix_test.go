package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func matricesClose(t *testing.T, a, b *Matrix, tol float64, msg string) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: shape mismatch %dx%d vs %dx%d", msg, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		if !almostEq(a.Data[i], b.Data[i], tol) {
			t.Fatalf("%s: element %d differs: %g vs %g", msg, i, a.Data[i], b.Data[i])
		}
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMatrixBasicOps(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})

	got := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	matricesClose(t, got, want, 0, "Mul")

	matricesClose(t, a.Add(b), FromRows([][]float64{{6, 8}, {10, 12}}), 0, "Add")
	matricesClose(t, b.Sub(a), FromRows([][]float64{{4, 4}, {4, 4}}), 0, "Sub")
	matricesClose(t, a.Scale(2), FromRows([][]float64{{2, 4}, {6, 8}}), 0, "Scale")
	matricesClose(t, a.T(), FromRows([][]float64{{1, 3}, {2, 4}}), 0, "T")
}

func TestMatrixMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v := []float64{1, 0, -1}
	got := a.MulVec(v)
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", got)
	}
}

func TestMatrixRowColAccess(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	r := a.Row(1)
	r[0] = 99 // must be a copy
	if a.At(1, 0) != 4 {
		t.Fatal("Row must return a copy")
	}
	c := a.Col(2)
	if c[0] != 3 || c[1] != 6 {
		t.Fatalf("Col = %v", c)
	}
	a.SetRow(0, []float64{7, 8, 9})
	if a.At(0, 2) != 9 {
		t.Fatal("SetRow did not write")
	}
}

func TestMatrixPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched Mul")
		}
	}()
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	a.Mul(b)
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	a := randomMatrix(rand.New(rand.NewSource(1)), 3, 3)
	matricesClose(t, a.Mul(id), a, 1e-15, "A*I")
	matricesClose(t, id.Mul(a), a, 1e-15, "I*A")
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2 wrong")
	}
	if Norm2(nil) != 0 {
		t.Fatal("Norm2(nil) should be 0")
	}
	// Scaling in Norm2 must avoid overflow.
	big := []float64{1e200, 1e200}
	if math.IsInf(Norm2(big), 1) {
		t.Fatal("Norm2 overflowed")
	}
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AXPY = %v", y)
	}
}

// Property: (A*B)^T == B^T * A^T for random small matrices.
func TestPropertyTransposeOfProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randomMatrix(r, m, k)
		b := randomMatrix(r, k, n)
		lhs := a.Mul(b).T()
		rhs := b.T().Mul(a.T())
		for i := range lhs.Data {
			if !almostEq(lhs.Data[i], rhs.Data[i], 1e-12) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQRSolveSquare(t *testing.T) {
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	x, err := SolveLinear(a, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Verify residual.
	r := a.MulVec(x)
	if !almostEq(r[0], 1, 1e-12) || !almostEq(r[1], 2, 1e-12) {
		t.Fatalf("residual %v", r)
	}
}

func TestQRLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 exactly representable.
	a := FromRows([][]float64{{0, 1}, {1, 1}, {2, 1}, {3, 1}})
	b := []float64{1, 3, 5, 7}
	x, err := ComputeQR(a).Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 2, 1e-12) || !almostEq(x[1], 1, 1e-12) {
		t.Fatalf("fit %v, want [2 1]", x)
	}
}

func TestQRSingularDetected(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("expected error for singular system")
	}
}

// Property: QR solution of random well-conditioned square systems satisfies
// A x = b to tight tolerance.
func TestPropertyQRSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		a := randomMatrix(r, n, n)
		// Diagonal dominance keeps condition number moderate.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+2)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		res := a.MulVec(x)
		for i := range res {
			if !almostEq(res[i], b[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
