package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func randMatrix(rng *rand.Rand, r, c int, sparse bool) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		if sparse && rng.Intn(3) == 0 {
			continue // leave exact zeros so the no-zero-skip contract is exercised
		}
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// TestMatMulIntoMatchesDot checks that every element of a MatMulInto product
// is bit-identical to the Dot of the corresponding row and column — the
// contract the batched predict path relies on when it stacks K signature
// vectors into a matrix.
func TestMatMulIntoMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 2}, {16, 64, 8}, {7, 4, 9}} {
		n, d, k := dims[0], dims[1], dims[2]
		a := randMatrix(rng, n, d, true)
		b := randMatrix(rng, d, k, true)
		out := NewMatrix(n, k)
		for i := range out.Data {
			out.Data[i] = rng.NormFloat64() // MatMulInto must fully overwrite
		}
		MatMulInto(out, a, b)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				want := Dot(a.Row(i), b.Col(j))
				if math.Float64bits(out.At(i, j)) != math.Float64bits(want) {
					t.Fatalf("dims %v elem (%d,%d): %x vs %x", dims, i, j,
						math.Float64bits(out.At(i, j)), math.Float64bits(want))
				}
			}
		}
		// Also against MulVec column by column.
		for j := 0; j < k; j++ {
			mv := a.MulVec(b.Col(j))
			for i := 0; i < n; i++ {
				if math.Float64bits(out.At(i, j)) != math.Float64bits(mv[i]) {
					t.Fatalf("dims %v MulVec col %d row %d mismatch", dims, j, i)
				}
			}
		}
	}
}

// TestPCATransformIntoBitIdentity checks scratch and batched PCA projection
// against the allocating Transform, bit for bit.
func TestPCATransformIntoBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := randMatrix(rng, 24, 10, false)
	p := ComputePCA(data, 4)

	probe := randMatrix(rng, 9, 10, false)
	scores := NewMatrix(probe.Rows, p.Components.Cols)
	centered := NewMatrix(probe.Rows, probe.Cols)
	p.TransformBatchInto(scores, centered, probe)
	into := make([]float64, p.Components.Cols)
	for i := 0; i < probe.Rows; i++ {
		row := probe.Row(i)
		want := p.Transform(row)
		p.TransformInto(row, into)
		for c := range want {
			if math.Float64bits(into[c]) != math.Float64bits(want[c]) {
				t.Fatalf("TransformInto row %d comp %d mismatch", i, c)
			}
			if math.Float64bits(scores.At(i, c)) != math.Float64bits(want[c]) {
				t.Fatalf("TransformBatchInto row %d comp %d mismatch", i, c)
			}
		}
	}
}
