package linalg

// PCA holds a principal component analysis of a data matrix whose rows are
// observations. It is used to compress high-dimensional FFT-bin signatures
// into a handful of scores before nonlinear regression.
type PCA struct {
	Mean       []float64 // column means of the training data
	Components *Matrix   // d x k, columns are principal directions
	Variances  []float64 // variance explained by each component
}

// ComputePCA fits k principal components to data (n observations x d
// features). k is clamped to min(n, d).
func ComputePCA(data *Matrix, k int) *PCA {
	n, d := data.Rows, data.Cols
	if k > d {
		k = d
	}
	if k > n {
		k = n
	}
	mean := make([]float64, d)
	for j := 0; j < d; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += data.At(i, j)
		}
		mean[j] = s / float64(n)
	}
	centered := NewMatrix(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			centered.Set(i, j, data.At(i, j)-mean[j])
		}
	}
	svd := ComputeSVD(centered)
	comp := NewMatrix(d, k)
	vars := make([]float64, k)
	for c := 0; c < k && c < len(svd.S); c++ {
		for j := 0; j < d; j++ {
			comp.Set(j, c, svd.V.At(j, c))
		}
		vars[c] = svd.S[c] * svd.S[c] / float64(max(n-1, 1))
	}
	return &PCA{Mean: mean, Components: comp, Variances: vars}
}

// Transform projects one observation onto the principal components.
func (p *PCA) Transform(x []float64) []float64 {
	d := len(p.Mean)
	k := p.Components.Cols
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		s := 0.0
		for j := 0; j < d; j++ {
			s += (x[j] - p.Mean[j]) * p.Components.At(j, c)
		}
		out[c] = s
	}
	return out
}

// TransformInto projects one observation into a caller-provided score
// slice of length Components.Cols, allocation-free and bit-identical to
// Transform (same fused center-multiply-accumulate loop).
func (p *PCA) TransformInto(x, out []float64) {
	d := len(p.Mean)
	k := p.Components.Cols
	if len(out) != k {
		panic("linalg: TransformInto output length mismatch")
	}
	for c := 0; c < k; c++ {
		s := 0.0
		for j := 0; j < d; j++ {
			s += (x[j] - p.Mean[j]) * p.Components.At(j, c)
		}
		out[c] = s
	}
}

// TransformBatchInto projects every row of data (n x d) into scores
// (n x Components.Cols) as one centered matrix-matrix product: rows are
// centered into the caller's scratch matrix, then pushed through Components
// with MatMulInto. Per score this performs subtract, multiply, accumulate
// over j in increasing order — the same FP sequence as Transform — so the
// batched scores are bit-identical to the row-at-a-time path. centered must
// be n x d and scores n x k; neither may alias data.
func (p *PCA) TransformBatchInto(scores, centered, data *Matrix) {
	d := len(p.Mean)
	if data.Cols != d || centered.Rows != data.Rows || centered.Cols != d {
		panic("linalg: TransformBatchInto shape mismatch")
	}
	for i := 0; i < data.Rows; i++ {
		ci := centered.Data[i*d : (i+1)*d]
		di := data.Data[i*d : (i+1)*d]
		for j, v := range di {
			ci[j] = v - p.Mean[j]
		}
	}
	MatMulInto(scores, centered, p.Components)
}

// TransformAll projects every row of data.
func (p *PCA) TransformAll(data *Matrix) *Matrix {
	out := NewMatrix(data.Rows, p.Components.Cols)
	for i := 0; i < data.Rows; i++ {
		out.SetRow(i, p.Transform(data.Row(i)))
	}
	return out
}
