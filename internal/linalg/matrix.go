// Package linalg provides the dense real linear algebra needed by the
// signature test framework: matrices, QR and SVD factorizations, the
// Moore-Penrose pseudoinverse used by the test-optimization objective
// (Eq. 9 of the paper), least-squares solvers and principal component
// analysis. Everything is float64 and row-major; sizes in this project are
// small (tens to low hundreds), so clarity beats blocking.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, element (i,j) at Data[i*Cols+j]
}

// NewMatrix returns a zeroed r x c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.Rows, m.Cols))
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("linalg: SetRow length %d != cols %d", len(v), m.Cols))
	}
	copy(m.Data[i*m.Cols:(i+1)*m.Cols], v)
}

// T returns the transpose.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Mul returns m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		oi := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out
}

// MatMulInto computes out = m * b without allocating. Unlike Mul it never
// skips zero elements: each out(i,j) accumulates over k in increasing order,
// the exact term sequence Dot and MulVec produce, so a matrix assembled from
// stacked row vectors multiplies to results bit-identical (including signed
// zeros) to the per-vector path. out must be preallocated to m.Rows x b.Cols
// and must not alias m or b.
func MatMulInto(out, m, b *Matrix) {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: MatMulInto dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	if out.Rows != m.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MatMulInto output %dx%d, want %dx%d", out.Rows, out.Cols, m.Rows, b.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		oi := out.Data[i*out.Cols : (i+1)*out.Cols]
		for j := range oi {
			oi[j] = 0
		}
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		for k, mik := range mi {
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
}

// MulVec returns m * v as a new slice.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, mij := range mi {
			s += mij * v[j]
		}
		out[i] = s
	}
	return out
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.sameShape(b, "Add")
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.sameShape(b, "Sub")
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= b.Data[i]
	}
	return out
}

// Scale returns s * m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

func (m *Matrix) sameShape(b *Matrix, op string) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, b.Rows, b.Cols))
	}
}

// FrobNorm returns the Frobenius norm.
func (m *Matrix) FrobNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest |element|.
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, "% .6g", m.At(i, j))
			if j < m.Cols-1 {
				b.WriteByte('\t')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, ai := range a {
		s += ai * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Two-pass scaling avoids overflow for extreme inputs.
	mx := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		r := x / mx
		s += r * r
	}
	return mx * math.Sqrt(s)
}

// AXPY computes y += a*x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i, xi := range x {
		y[i] += a * xi
	}
}
