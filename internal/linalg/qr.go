package linalg

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization A = Q R with Q m x m orthogonal
// (stored implicitly) and R m x n upper triangular.
type QR struct {
	qr   *Matrix   // Householder vectors below the diagonal, R on/above
	rdia []float64 // diagonal of R
}

// ComputeQR factors a (m >= n required for the solver paths used here).
func ComputeQR(a *Matrix) *QR {
	m, n := a.Rows, a.Cols
	qr := a.Clone()
	rdia := make([]float64, n)
	for k := 0; k < n && k < m; k++ {
		// Norm of column k below row k.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 {
			rdia[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdia[k] = -nrm
	}
	return &QR{qr: qr, rdia: rdia}
}

// IsFullRank reports whether R has no (near-)zero diagonal entries.
func (f *QR) IsFullRank() bool {
	mx := 0.0
	for _, d := range f.rdia {
		if a := math.Abs(d); a > mx {
			mx = a
		}
	}
	tol := 1e-13 * mx
	for _, d := range f.rdia {
		if math.Abs(d) <= tol {
			return false
		}
	}
	return true
}

// Solve returns x minimizing ||A x - b||_2 for full-column-rank A.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m {
		return nil, fmt.Errorf("linalg: QR solve: len(b)=%d, want %d", len(b), m)
	}
	if !f.IsFullRank() {
		return nil, fmt.Errorf("linalg: QR solve: matrix is rank deficient")
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply Q^T.
	for k := 0; k < n && k < m; k++ {
		if f.qr.At(k, k) == 0 {
			continue
		}
		s := 0.0
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution with R.
	x := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		s := y[k]
		for j := k + 1; j < n; j++ {
			s -= f.qr.At(k, j) * x[j]
		}
		x[k] = s / f.rdia[k]
	}
	return x, nil
}

// SolveLinear solves the square system A x = b via QR. It returns an error
// for singular systems.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: SolveLinear needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	return ComputeQR(a).Solve(b)
}
