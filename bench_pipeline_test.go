// Serial-vs-parallel off-line pipeline benchmarks (`make bench`). The two
// hot phases of test preparation — training-set calibration and GA
// stimulus optimization — run serially and on worker pools of increasing
// size; the wall times and speedups land in BENCH_pipeline.json. Every
// parallel run is asserted bit-identical to the serial one: the worker
// pool buys wall-clock time, never different numbers.
package repro

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/lna"
	"repro/internal/wave"
)

const (
	benchPipeSeed    = 31
	benchPipeDevices = 48
)

type pipeBench struct {
	cfg   *core.TestConfig
	stim  *wave.PWL
	train []*core.Device
}

var (
	pipeBenchOnce sync.Once
	pipeBenchFix  *pipeBench
	pipeBenchErr  error
)

func getPipeBench(b *testing.B) *pipeBench {
	b.Helper()
	pipeBenchOnce.Do(func() {
		rng := rand.New(rand.NewSource(benchPipeSeed))
		model := core.RF2401Model{}
		cfg := core.DefaultSimConfig()
		stim := cfg.RandomStimulus(rng)
		train, err := core.GeneratePopulation(rng, model, benchPipeDevices, 0.9)
		if err != nil {
			pipeBenchErr = err
			return
		}
		pipeBenchFix = &pipeBench{cfg: cfg, stim: stim, train: train}
	})
	if pipeBenchErr != nil {
		b.Fatalf("pipeline benchmark fixture: %v", pipeBenchErr)
	}
	return pipeBenchFix
}

// mergeBenchJSON read-modify-writes BENCH_pipeline.json so that
// BenchmarkCalibrate and BenchmarkGA each contribute their section
// regardless of which one ran, or in which order.
func mergeBenchJSON(b *testing.B, section string, values map[string]any) {
	b.Helper()
	out := map[string]any{}
	if data, err := os.ReadFile("BENCH_pipeline.json"); err == nil {
		_ = json.Unmarshal(data, &out)
	}
	out[section] = values
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pipeline.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCalibrate acquires the training set and fits the calibration
// map for the same seeded lot serially and on worker pools, asserting the
// training signatures and CV errors bit-identical throughout.
func BenchmarkCalibrate(b *testing.B) {
	f := getPipeBench(b)
	specsOf := func(d *core.Device) lna.Specs { return d.Specs }
	out := map[string]any{
		"devices": benchPipeDevices,
		"seed":    benchPipeSeed,
	}
	var refSigs [][]float64
	var refRMS [3]float64

	runOnce := func(b *testing.B, workers int) (*core.Calibration, []core.TrainingDevice) {
		td, err := core.AcquireTrainingSetSeeded(benchPipeSeed, f.cfg, f.stim, f.train, specsOf, workers)
		if err != nil {
			b.Fatal(err)
		}
		cal, err := core.Calibrate(rand.New(rand.NewSource(benchPipeSeed)), f.stim, td,
			core.CalibrationOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		return cal, td
	}

	b.Run("serial", func(b *testing.B) {
		var cal *core.Calibration
		var td []core.TrainingDevice
		for i := 0; i < b.N; i++ {
			cal, td = runOnce(b, 1)
		}
		refSigs = make([][]float64, len(td))
		for i := range td {
			refSigs[i] = td[i].Signature
		}
		refRMS = cal.CVRMS
		perDev := float64(b.Elapsed().Nanoseconds()) / float64(b.N*benchPipeDevices)
		b.ReportMetric(perDev, "ns/device")
		out["serial_ns_per_device"] = perDev
	})

	for _, w := range []int{2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var cal *core.Calibration
			var td []core.TrainingDevice
			for i := 0; i < b.N; i++ {
				cal, td = runOnce(b, w)
			}
			for i := range td {
				for j := range td[i].Signature {
					if refSigs != nil && td[i].Signature[j] != refSigs[i][j] {
						b.Fatalf("workers=%d: training device %d bin %d differs from serial", w, i, j)
					}
				}
			}
			if cal.CVRMS != refRMS {
				b.Fatalf("workers=%d: CV RMS %v differs from serial %v", w, cal.CVRMS, refRMS)
			}
			perDev := float64(b.Elapsed().Nanoseconds()) / float64(b.N*benchPipeDevices)
			b.ReportMetric(perDev, "ns/device")
			if s, ok := out["serial_ns_per_device"].(float64); ok && perDev > 0 {
				b.ReportMetric(s/perDev, "speedup")
				out[fmt.Sprintf("workers%d_speedup", w)] = s / perDev
			}
			out[fmt.Sprintf("workers%d_ns_per_device", w)] = perDev
		})
	}

	mergeBenchJSON(b, "calibrate", out)
}

// BenchmarkGA evolves the stimulus with the real signature-sensitivity
// fitness (the dominant off-line cost) serially and on a worker pool,
// asserting the objective trace bit-identical.
func BenchmarkGA(b *testing.B) {
	model := core.RF2401Model{}
	cfg := core.DefaultSimConfig()
	const pop, gens = 8, 2
	out := map[string]any{
		"popsize":     pop,
		"generations": gens,
		"seed":        benchPipeSeed,
	}
	var refTrace []float64

	runOnce := func(b *testing.B, workers int) *core.OptimizeResult {
		rng := rand.New(rand.NewSource(benchPipeSeed))
		res, err := core.OptimizeStimulus(rng, model, cfg, core.OptimizerOptions{
			PopSize: pop, Generations: gens, Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}

	b.Run("serial", func(b *testing.B) {
		var res *core.OptimizeResult
		for i := 0; i < b.N; i++ {
			res = runOnce(b, 1)
		}
		refTrace = res.Trace
		perGen := float64(b.Elapsed().Nanoseconds()) / float64(b.N*gens)
		b.ReportMetric(perGen, "ns/generation")
		out["serial_ns_per_generation"] = perGen
	})

	b.Run("workers=4", func(b *testing.B) {
		var res *core.OptimizeResult
		for i := 0; i < b.N; i++ {
			res = runOnce(b, 4)
		}
		for i := range res.Trace {
			if refTrace != nil && res.Trace[i] != refTrace[i] {
				b.Fatalf("workers=4: GA trace[%d] %g differs from serial %g", i, res.Trace[i], refTrace[i])
			}
		}
		perGen := float64(b.Elapsed().Nanoseconds()) / float64(b.N*gens)
		b.ReportMetric(perGen, "ns/generation")
		if s, ok := out["serial_ns_per_generation"].(float64); ok && perGen > 0 {
			b.ReportMetric(s/perGen, "speedup")
			out["workers4_speedup"] = s / perGen
		}
		out["workers4_ns_per_generation"] = perGen
	})

	mergeBenchJSON(b, "ga", out)
}
