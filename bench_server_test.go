// Multi-lot screening service benchmark (`make bench`). A lotserver with
// local workers screens several concurrent lots submitted together; the
// aggregate device throughput and the p50/p95/p99 device latency
// (first assignment → journal commit) from the server's own /statusz ring
// land in BENCH_server.json. The bins of every lot are asserted identical
// to a serial single-lot run — concurrency must buy throughput, never
// different screening.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/floor"
	"repro/internal/lotrun"
	"repro/internal/lotserver"
	"repro/internal/modelreg"
)

// BenchmarkServe runs three concurrent lots through the multi-lot server
// at increasing local-worker counts and writes throughput plus latency
// percentiles to BENCH_server.json.
func BenchmarkServe(b *testing.B) {
	f := getLotBench(b)
	specs := []lotserver.LotSpec{
		{ID: "bench-a", Seed: benchLotSeed, Devices: benchLotDevices},
		{ID: "bench-b", Seed: benchLotSeed + 1, Devices: benchLotDevices / 2},
		{ID: "bench-c", Seed: benchLotSeed + 2, Devices: benchLotDevices / 4},
	}
	totalDevices := 0
	for _, s := range specs {
		totalDevices += s.Devices
	}

	// Serial references: the bins every served lot must reproduce.
	refs := make(map[string][]floor.Bin, len(specs))
	for _, spec := range specs {
		rep, err := f.engine.RunLot(spec.Seed, f.lot[:spec.Devices], f.faults)
		if err != nil {
			b.Fatal(err)
		}
		refs[spec.ID] = lotBins(rep)
	}

	out := map[string]any{
		"lots":          len(specs),
		"total_devices": totalDevices,
		"faultp":        benchLotFaultP,
	}

	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var st lotserver.Status
			for i := 0; i < b.N; i++ {
				s, err := lotserver.New(lotserver.Options{
					Engine: f.engine, Pool: f.lot, Faults: f.faults,
					LocalWorkers:  workers,
					MaxActiveLots: len(specs),
					Breaker:       lotrun.BreakerConfig{TripConsecutive: 1 << 20},
				})
				if err != nil {
					b.Fatal(err)
				}
				handles := make([]*lotserver.LotHandle, len(specs))
				for j, spec := range specs {
					h, err := s.Submit(context.Background(), spec)
					if err != nil {
						b.Fatal(err)
					}
					handles[j] = h
				}
				for j, h := range handles {
					res, err := h.Wait(context.Background())
					if err != nil {
						b.Fatal(err)
					}
					bins := lotBins(res.Report)
					for k, bin := range bins {
						if bin != refs[specs[j].ID][k] {
							b.Fatalf("lot %s device %d binned %v served vs %v serially",
								specs[j].ID, k, bin, refs[specs[j].ID][k])
						}
					}
				}
				st = s.Status()
				s.Kill()
			}
			perDev := float64(b.Elapsed().Nanoseconds()) / float64(b.N*totalDevices)
			b.ReportMetric(perDev, "ns/device")
			b.ReportMetric(st.LatencyP99Ms, "p99-ms")
			key := fmt.Sprintf("workers%d", workers)
			out[key+"_ns_per_device"] = perDev
			out[key+"_devices_per_s"] = 1e9 / perDev
			out[key+"_latency_p50_ms"] = st.LatencyP50Ms
			out[key+"_latency_p95_ms"] = st.LatencyP95Ms
			out[key+"_latency_p99_ms"] = st.LatencyP99Ms
		})
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_server.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkShadowScreen measures what shadow-scoring a candidate
// calibration costs the serving floor: the same lot screened with no
// registry and with a shadow candidate being scored on every commit
// (waiting for the shadow queue to drain), incumbent bins asserted
// identical in both runs. The with/without ns/device pair is merged into
// BENCH_server.json.
func BenchmarkShadowScreen(b *testing.B) {
	f := getLotBench(b)
	spec := lotserver.LotSpec{ID: "shadow-bench", Seed: benchLotSeed, Devices: benchLotDevices}
	rep, err := f.engine.RunLot(spec.Seed, f.lot[:spec.Devices], f.faults)
	if err != nil {
		b.Fatal(err)
	}
	ref := lotBins(rep)

	run := func(b *testing.B, withShadow bool) float64 {
		for i := 0; i < b.N; i++ {
			opt := lotserver.Options{
				Engine: f.engine, Pool: f.lot, Faults: f.faults,
				LocalWorkers: 2,
				Breaker:      lotrun.BreakerConfig{TripConsecutive: 1 << 20},
			}
			if withShadow {
				reg, err := modelreg.Open("") // in-memory: no fsync in the measurement
				if err != nil {
					b.Fatal(err)
				}
				opt.Registry = reg
				// No verdicts during the benchmark: just the scoring work.
				opt.ShadowBounds = modelreg.Bounds{MinSamples: spec.Devices*b.N + 1}
			}
			s, err := lotserver.New(opt)
			if err != nil {
				b.Fatal(err)
			}
			if withShadow {
				v, err := s.StageCandidate(f.engine.Cal, f.engine.Gate, "bench candidate")
				if err != nil {
					b.Fatal(err)
				}
				if err := s.BeginShadow(v); err != nil {
					b.Fatal(err)
				}
			}
			h, err := s.Submit(context.Background(), spec)
			if err != nil {
				b.Fatal(err)
			}
			res, err := h.Wait(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			for k, bin := range lotBins(res.Report) {
				if bin != ref[k] {
					b.Fatalf("device %d binned %v with shadow=%v vs %v serially", k, bin, withShadow, ref[k])
				}
			}
			if withShadow {
				for {
					rs := s.RolloutStatus()
					if rs.Shadow != nil && rs.Shadow.Scored+rs.Shadow.Dropped >= spec.Devices {
						break
					}
				}
			}
			s.Kill()
		}
		return float64(b.Elapsed().Nanoseconds()) / float64(b.N*spec.Devices)
	}

	out := map[string]any{}
	if prev, err := os.ReadFile("BENCH_server.json"); err == nil {
		json.Unmarshal(prev, &out)
	}
	b.Run("baseline", func(b *testing.B) {
		ns := run(b, false)
		b.ReportMetric(ns, "ns/device")
		out["shadow_off_ns_per_device"] = ns
	})
	b.Run("shadow", func(b *testing.B) {
		ns := run(b, true)
		b.ReportMetric(ns, "ns/device")
		out["shadow_on_ns_per_device"] = ns
	})
	if off, on := out["shadow_off_ns_per_device"], out["shadow_on_ns_per_device"]; off != nil && on != nil {
		out["shadow_overhead_ratio"] = on.(float64) / off.(float64)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_server.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
