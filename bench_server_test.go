// Multi-lot screening service benchmark (`make bench`). A lotserver with
// local workers screens several concurrent lots submitted together; the
// aggregate device throughput and the p50/p95/p99 device latency
// (first assignment → journal commit) from the server's own /statusz ring
// land in BENCH_server.json. The bins of every lot are asserted identical
// to a serial single-lot run — concurrency must buy throughput, never
// different screening.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/floor"
	"repro/internal/lotrun"
	"repro/internal/lotserver"
)

// BenchmarkServe runs three concurrent lots through the multi-lot server
// at increasing local-worker counts and writes throughput plus latency
// percentiles to BENCH_server.json.
func BenchmarkServe(b *testing.B) {
	f := getLotBench(b)
	specs := []lotserver.LotSpec{
		{ID: "bench-a", Seed: benchLotSeed, Devices: benchLotDevices},
		{ID: "bench-b", Seed: benchLotSeed + 1, Devices: benchLotDevices / 2},
		{ID: "bench-c", Seed: benchLotSeed + 2, Devices: benchLotDevices / 4},
	}
	totalDevices := 0
	for _, s := range specs {
		totalDevices += s.Devices
	}

	// Serial references: the bins every served lot must reproduce.
	refs := make(map[string][]floor.Bin, len(specs))
	for _, spec := range specs {
		rep, err := f.engine.RunLot(spec.Seed, f.lot[:spec.Devices], f.faults)
		if err != nil {
			b.Fatal(err)
		}
		refs[spec.ID] = lotBins(rep)
	}

	out := map[string]any{
		"lots":          len(specs),
		"total_devices": totalDevices,
		"faultp":        benchLotFaultP,
	}

	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var st lotserver.Status
			for i := 0; i < b.N; i++ {
				s, err := lotserver.New(lotserver.Options{
					Engine: f.engine, Pool: f.lot, Faults: f.faults,
					LocalWorkers:  workers,
					MaxActiveLots: len(specs),
					Breaker:       lotrun.BreakerConfig{TripConsecutive: 1 << 20},
				})
				if err != nil {
					b.Fatal(err)
				}
				handles := make([]*lotserver.LotHandle, len(specs))
				for j, spec := range specs {
					h, err := s.Submit(context.Background(), spec)
					if err != nil {
						b.Fatal(err)
					}
					handles[j] = h
				}
				for j, h := range handles {
					res, err := h.Wait(context.Background())
					if err != nil {
						b.Fatal(err)
					}
					bins := lotBins(res.Report)
					for k, bin := range bins {
						if bin != refs[specs[j].ID][k] {
							b.Fatalf("lot %s device %d binned %v served vs %v serially",
								specs[j].ID, k, bin, refs[specs[j].ID][k])
						}
					}
				}
				st = s.Status()
				s.Kill()
			}
			perDev := float64(b.Elapsed().Nanoseconds()) / float64(b.N*totalDevices)
			b.ReportMetric(perDev, "ns/device")
			b.ReportMetric(st.LatencyP99Ms, "p99-ms")
			key := fmt.Sprintf("workers%d", workers)
			out[key+"_ns_per_device"] = perDev
			out[key+"_devices_per_s"] = 1e9 / perDev
			out[key+"_latency_p50_ms"] = st.LatencyP50Ms
			out[key+"_latency_p95_ms"] = st.LatencyP95Ms
			out[key+"_latency_p99_ms"] = st.LatencyP99Ms
		})
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_server.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
